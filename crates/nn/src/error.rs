//! The typed error surface of the inference and PTQ stack.
//!
//! Every failure a malformed graph, bad binding, or hostile input can
//! provoke is represented here, so callers running fleets of workloads
//! (the paper sweeps 75 architectures over 200+ tasks) can record one
//! workload's failure and keep going instead of unwinding the process.

use crate::graph::ValueId;
use std::fmt;

/// A tensor shape, as used by [`crate::Graph::validate`].
pub type Shape = ptq_tensor::shape::Shape;

/// Why a graph could not be validated or executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PtqError {
    /// The caller supplied the wrong number of runtime inputs.
    InputArity {
        /// Inputs the graph declares.
        expected: usize,
        /// Inputs the caller supplied.
        got: usize,
    },
    /// An operator references a parameter value with no bound tensor.
    UnboundParam {
        /// The dangling value id.
        value: ValueId,
        /// Name of the referencing node.
        node: String,
    },
    /// A node reads a value that no input, parameter, or earlier node
    /// produces.
    UseBeforeDef {
        /// The undefined value id.
        value: ValueId,
        /// Name of the reading node.
        node: String,
    },
    /// A declared graph output is never produced.
    UnproducedOutput {
        /// The missing output value id.
        value: ValueId,
    },
    /// An operator's shape preconditions are violated.
    ShapeMismatch {
        /// Name of the offending node.
        node: String,
        /// Human-readable rule violation (from `ptq_tensor::shape`).
        detail: String,
    },
    /// Runtime data fails an operator's value-level contract (e.g.
    /// negative, fractional, or out-of-range embedding ids).
    InvalidInput {
        /// Name of the offending node.
        node: String,
        /// What was wrong with the data.
        detail: String,
    },
    /// The graph has no nodes.
    EmptyGraph,
    /// An operation targeted the wrong kind of value or node (e.g.
    /// re-binding a non-parameter, reading BatchNorm params off a Conv).
    InvalidTarget {
        /// What the caller did wrong.
        detail: String,
    },
    /// A saved artifact could not be read or written (container-level
    /// corruption, version skew, or a malformed chunk payload).
    Artifact(ptq_artifact::ArtifactError),
    /// The incremental-decode planner met a graph it cannot run
    /// step-wise (an op outside the decoder set, or an attention pattern
    /// it cannot match to a cache).
    DecodeUnsupported {
        /// Name of the offending node (or the pattern stage that failed).
        node: String,
        /// What could not be decoded incrementally.
        detail: String,
    },
    /// A KV cache operation failed: capacity overflow (the session
    /// outgrew its planned window), a ragged row, or a bad layer index.
    KvCache(ptq_tensor::kv::KvError),
    /// An unclassified failure, e.g. a panic caught at a fail-soft
    /// boundary.
    Internal(String),
}

impl fmt::Display for PtqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtqError::InputArity { expected, got } => {
                write!(f, "graph expects {expected} inputs, got {got}")
            }
            PtqError::UnboundParam { value, node } => {
                write!(f, "parameter {value} not bound (node {node})")
            }
            PtqError::UseBeforeDef { value, node } => {
                write!(f, "value {value} is not produced before node {node}")
            }
            PtqError::UnproducedOutput { value } => {
                write!(f, "output value {value} was not produced")
            }
            PtqError::ShapeMismatch { node, detail } => {
                write!(f, "shape error at node {node}: {detail}")
            }
            PtqError::InvalidInput { node, detail } => {
                write!(f, "invalid input at node {node}: {detail}")
            }
            PtqError::EmptyGraph => write!(f, "graph has no nodes"),
            PtqError::InvalidTarget { detail } => write!(f, "invalid target: {detail}"),
            PtqError::Artifact(e) => write!(f, "artifact error: {e}"),
            PtqError::DecodeUnsupported { node, detail } => {
                write!(f, "incremental decode unsupported at {node}: {detail}")
            }
            PtqError::KvCache(e) => write!(f, "kv cache error: {e}"),
            PtqError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for PtqError {}

impl From<ptq_artifact::ArtifactError> for PtqError {
    fn from(e: ptq_artifact::ArtifactError) -> Self {
        PtqError::Artifact(e)
    }
}

impl From<ptq_tensor::kv::KvError> for PtqError {
    fn from(e: ptq_tensor::kv::KvError) -> Self {
        PtqError::KvCache(e)
    }
}

/// The single blessed panicking escape hatch for [`PtqError`] results.
///
/// The canonical API surface is `Result`-returning; code that genuinely
/// wants abort-on-error semantics (examples, tests, one-shot binaries)
/// writes `graph.run(&inputs, &mut hook).unwrap_ok()` instead of relying
/// on separate panicking method variants. The panic message is the
/// error's `Display` form, matching the old `panic!("{e}")` wrappers.
pub trait UnwrapOk<T> {
    /// Unwrap the `Ok` value, panicking with the error's `Display` text.
    fn unwrap_ok(self) -> T;
}

impl<T> UnwrapOk<T> for Result<T, PtqError> {
    fn unwrap_ok(self) -> T {
        match self {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }
}
