//! Incremental autoregressive decoding with a KV cache.
//!
//! [`crate::Graph::run`] and [`ExecPlan::run`] evaluate a decoder over a
//! full `[seq]` window every call — O(seq²) attention work per generated
//! token. This module splits that into the classic prefill/step form:
//!
//! * [`ExecPlan::plan_decode`] pattern-matches every causal attention
//!   group in the graph (the `q/k/v → reshape → permute → scores →
//!   scale → mask → softmax → context` motif the model-zoo builder
//!   emits), keeps the existing full-window plan for the **prefill**
//!   pass, and compiles a **step** schedule that runs the whole network
//!   on a single `[1, d]` token row, serving attention from a
//!   [`KvCache`] instead of recomputing K/V for the whole window.
//! * [`DecodeState`] owns the cache plus the step-persistent value slots
//!   (every step writes into the same pre-sized tensors — the step arena
//!   pins all values for the step, the decode-time analogue of the
//!   prefill plan's linear-scan arena) and drives `prefill` / `step`.
//!
//! ## The step schedule
//!
//! Per node, the planner picks one of five step ops:
//!
//! * **Eval** — run the node unchanged through the shared
//!   [`crate::exec::eval_node_into`] with the *exact* staged-inputs +
//!   hook protocol of the interpreter and planned executor (same
//!   `before_node` → `quantize_act` → `weight_q`/`weight_ref`/`weight`
//!   resolution → `after_node` order), so quantization hooks observe the
//!   step exactly as they would a full pass. `Reshape` targets whose
//!   leading dim is the full window are rewritten to a single row.
//! * **AddPosRow** — an `AddParam` whose parameter spans the full window
//!   (positional embeddings `[seq, d]`) adds only row `t`; broadcasting
//!   the full table would silently widen the step to `[seq, d]`.
//! * **Scores / Context** — the two attention `BatchMatMul`s, served by
//!   [`attention_step_q`] / [`attention_step_v`] against the cache.
//!   These cache-backed ops are hook-invisible: the full-window operands
//!   they would need do not exist step-wise.
//! * **Skip** — the K/V `reshape`/`permute` glue whose outputs only feed
//!   a cache-backed op.
//!
//! K and V source rows are appended to the cache immediately after their
//! producing node evaluates (topologically before the attention that
//! reads them, so position `t` attends to itself like the full window's
//! causal row `t`).
//!
//! ## Bit-identity (the equivalence oracle)
//!
//! With [`KvCachePolicy::F32`] a step is bit-identical to row `t` of a
//! full-window forward over the same prefix (zero-padded to `seq`):
//! every decoder op is row-independent, the bottom-aligned causal mask
//! makes row `t` blind to the padding, the softmax −inf tail contributes
//! exact `+0.0`s, and the step kernels replicate `batch_matmul`'s
//! accumulation chains (see `ptq_tensor::ops::attn` and DESIGN.md §16).
//! This holds for hooks whose per-op behaviour is shape-independent:
//! `NoopHook`, weight-only and *static*-scale activation quantization
//! over the standard `{Conv2d, Linear, Embedding}` coverage. Dynamic
//! activation scales are recomputed per tensor and therefore differ
//! between a `[seq, d]` prefill tensor and a `[1, d]` step row — that
//! configuration decodes fine but is not bit-exact, by construction.
//!
//! With an FP8 cache the only deviation is the cache's own storage
//! rounding; scale calibration follows the session's static-vs-dynamic
//! convention (static per-tensor scale from prefill activations via
//! [`KvCachePolicy::calibrated`], per-row dynamic fallback otherwise).

use crate::error::{PtqError, Shape};
use crate::exec::{ActsRef, EvalScratch, ParamsRef, MAX_ACT_INPUTS, MAX_OP_PARAMS};
use crate::graph::{Graph, Node, NodeId, Op, ValueId};
use crate::interp::ExecHook;
use crate::plan::ExecPlan;
use ptq_tensor::ops::{attention_step_q, attention_step_v};
use ptq_tensor::{KvCache, KvCachePolicy, KvError, KvSide, QActTensor, Tensor};
use std::collections::HashMap;

/// One matched causal-attention group.
#[derive(Debug, Clone)]
struct AttnGroup {
    /// Node computing `scores = bmm(qh, khᵀ)` — served from the K cache.
    scores: NodeId,
    /// Node computing `ctx = bmm(probs, vh)` — served from the V cache.
    context: NodeId,
    /// Producer of the `[seq, d]` K rows that are cached.
    k_src: NodeId,
    /// Producer of the `[seq, d]` V rows that are cached.
    v_src: NodeId,
    /// Attention heads.
    heads: usize,
    /// Per-head width (`d = heads * dh`).
    dh: usize,
}

/// How one node executes inside a decode step.
#[derive(Debug, Clone)]
enum StepOp {
    /// Evaluate through the shared kernel dispatch with the full hook
    /// protocol; append the output row to the listed cache buffers.
    Eval {
        /// `(layer, side)` buffers fed by this node's `[1, d]` output.
        appends: Vec<(usize, KvSide)>,
    },
    /// `AddParam` over a full-window table: add row `t` only.
    AddPosRow {
        /// The table's parameter value.
        param: ValueId,
    },
    /// Attention scores against the K cache of `group`.
    Scores {
        /// Index into the plan's attention groups.
        group: usize,
    },
    /// Attention context against the V cache of `group`.
    Context {
        /// Index into the plan's attention groups.
        group: usize,
    },
    /// K/V-side shape glue with no step-time output.
    Skip,
}

/// Where a step node's activation input comes from.
#[derive(Debug, Clone, Copy)]
enum StepSrc {
    /// The single runtime token id.
    Input,
    /// A step-persistent value slot.
    Value(ValueId),
}

/// A prefill + per-step decode schedule for one decoder graph at one
/// window size. Build with [`ExecPlan::plan_decode`] (or the
/// [`Graph::plan_decode`] convenience), execute with [`DecodeState`].
#[derive(Debug)]
pub struct DecodePlan {
    /// Full-window plan used for the prefill pass.
    prefill: ExecPlan,
    /// Window size = cache capacity = absolute position count.
    seq: usize,
    /// Cached row width (`heads * dh`, uniform across layers).
    d_model: usize,
    /// Per-node step schedule, in node order.
    steps: Vec<StepOp>,
    /// Per-node activation sources (parallel to `steps`).
    srcs: Vec<Vec<StepSrc>>,
    /// Step-time node descriptors: graph nodes with full-window `Reshape`
    /// targets rewritten to single-row form. Ids and names are preserved,
    /// so hooks keyed on either see the original identity.
    step_nodes: Vec<Node>,
    /// Matched attention groups, in layer order.
    groups: Vec<AttnGroup>,
    /// Structural fingerprint (must match the executed graph).
    n_nodes: usize,
    /// Structural fingerprint (must match the executed graph).
    n_values: usize,
    /// The logits value (single graph output).
    output: ValueId,
    /// Widest step-node arity (sizes the staging buffers).
    max_arity: usize,
}

impl Graph {
    /// Convenience for [`ExecPlan::plan_decode`].
    pub fn plan_decode(&self, seq: usize) -> Result<DecodePlan, PtqError> {
        ExecPlan::plan_decode(self, seq)
    }
}

/// Shorthand for the planner's rejection error.
fn unsupported(node: &Node, detail: impl Into<String>) -> PtqError {
    PtqError::DecodeUnsupported {
        node: node.name.clone(),
        detail: detail.into(),
    }
}

impl ExecPlan {
    /// Split `graph` into a prefill plan and a per-step schedule for a
    /// `seq`-position window.
    ///
    /// Rejects with [`PtqError::DecodeUnsupported`] any graph that is not
    /// a single-input/single-output causal decoder over the row-independent
    /// op set (attention via the builder motif, `Linear`/`LayerNorm`/
    /// elementwise/`Embedding` everywhere else). Pooling heads
    /// (`MeanRows`, `GlobalAvgPool`), convolutions and free-standing
    /// `MatMul`/`BatchMatMul` mix rows and cannot decode incrementally.
    pub fn plan_decode(graph: &Graph, seq: usize) -> Result<DecodePlan, PtqError> {
        if seq == 0 {
            return Err(PtqError::InvalidTarget {
                detail: "decode window must hold at least one position".into(),
            });
        }
        if graph.inputs.len() != 1 || graph.outputs.len() != 1 {
            return Err(PtqError::DecodeUnsupported {
                node: "<graph>".into(),
                detail: format!(
                    "decoder must have 1 input / 1 output, has {} / {}",
                    graph.inputs.len(),
                    graph.outputs.len()
                ),
            });
        }
        let prefill = graph.plan(&[vec![seq]])?;

        // Value -> producing node / consuming nodes.
        let mut producer: Vec<Option<NodeId>> = vec![None; graph.n_values];
        let mut consumers: Vec<Vec<NodeId>> = vec![Vec::new(); graph.n_values];
        for (i, node) in graph.nodes.iter().enumerate() {
            producer[node.output] = Some(i);
            for &v in &node.inputs {
                consumers[v].push(i);
            }
        }

        let groups = match_attention_groups(graph, seq, &producer, &consumers)?;
        let d_model = match groups.first() {
            Some(g) => g.heads * g.dh,
            None => 0,
        };
        for g in &groups {
            if g.heads * g.dh != d_model {
                return Err(unsupported(
                    &graph.nodes[g.scores],
                    format!(
                        "mixed cache row widths {} vs {d_model} — one KvCache spans all layers",
                        g.heads * g.dh
                    ),
                ));
            }
        }

        // Node -> role lookup tables.
        let mut scores_of: HashMap<NodeId, usize> = HashMap::new();
        let mut context_of: HashMap<NodeId, usize> = HashMap::new();
        let mut appends_at: HashMap<NodeId, Vec<(usize, KvSide)>> = HashMap::new();
        let mut skip: Vec<bool> = vec![false; graph.nodes.len()];
        for (gi, g) in groups.iter().enumerate() {
            scores_of.insert(g.scores, gi);
            context_of.insert(g.context, gi);
            appends_at.entry(g.k_src).or_default().push((gi, KvSide::K));
            appends_at.entry(g.v_src).or_default().push((gi, KvSide::V));
            for side_val in [
                graph.nodes[g.scores].inputs[1],
                graph.nodes[g.context].inputs[1],
            ] {
                let mut n = producer[side_val].ok_or(PtqError::UseBeforeDef {
                    value: side_val,
                    node: graph.nodes[g.scores].name.clone(),
                })?;
                // Permute then Reshape, matched in match_attention_groups.
                skip[n] = true;
                n = producer[graph.nodes[n].inputs[0]].unwrap_or(n);
                skip[n] = true;
            }
        }

        // Compile the per-node step schedule and node descriptors.
        let mut steps = Vec::with_capacity(graph.nodes.len());
        let mut step_nodes = Vec::with_capacity(graph.nodes.len());
        let mut srcs: Vec<Vec<StepSrc>> = Vec::with_capacity(graph.nodes.len());
        let mut max_arity = 0usize;
        for (i, node) in graph.nodes.iter().enumerate() {
            let mut step_node = node.clone();
            let op = if skip[i] {
                StepOp::Skip
            } else if let Some(&g) = scores_of.get(&i) {
                StepOp::Scores { group: g }
            } else if let Some(&g) = context_of.get(&i) {
                StepOp::Context { group: g }
            } else {
                match &node.op {
                    Op::Linear { .. }
                    | Op::Embedding { .. }
                    | Op::LayerNorm { .. }
                    | Op::Add
                    | Op::Mul
                    | Op::Relu
                    | Op::Gelu
                    | Op::Silu
                    | Op::Sigmoid
                    | Op::Tanh
                    | Op::Softmax
                    | Op::Scale(_)
                    | Op::CausalMask
                    | Op::Permute(_) => StepOp::Eval {
                        appends: appends_at.remove(&i).unwrap_or_default(),
                    },
                    Op::Reshape(target) => {
                        let mut t = target.clone();
                        if t.first() == Some(&seq) {
                            t[0] = 1;
                            step_node.op = Op::Reshape(t);
                        }
                        StepOp::Eval {
                            appends: appends_at.remove(&i).unwrap_or_default(),
                        }
                    }
                    Op::AddParam { param } => {
                        let table = graph.params.get(param).ok_or(PtqError::UnboundParam {
                            value: *param,
                            node: node.name.clone(),
                        })?;
                        if table.ndim() >= 2 && table.dim(0) == seq {
                            StepOp::AddPosRow { param: *param }
                        } else {
                            StepOp::Eval {
                                appends: appends_at.remove(&i).unwrap_or_default(),
                            }
                        }
                    }
                    Op::MatMul | Op::BatchMatMul => {
                        return Err(unsupported(
                            node,
                            "activation matmul outside a causal attention group",
                        ))
                    }
                    other => {
                        return Err(unsupported(
                            node,
                            format!("op {:?} is not row-independent", other.class()),
                        ))
                    }
                }
            };
            let node_srcs: Vec<StepSrc> = node
                .inputs
                .iter()
                .map(|&v| {
                    if v == graph.inputs[0] {
                        StepSrc::Input
                    } else {
                        StepSrc::Value(v)
                    }
                })
                .collect();
            max_arity = max_arity.max(node_srcs.len());
            steps.push(op);
            step_nodes.push(step_node);
            srcs.push(node_srcs);
        }

        let plan = DecodePlan {
            prefill,
            seq,
            d_model,
            steps,
            srcs,
            step_nodes,
            groups,
            n_nodes: graph.nodes.len(),
            n_values: graph.n_values,
            output: graph.outputs[0],
            max_arity,
        };
        plan.check_step_shapes(graph)?;
        Ok(plan)
    }
}

/// Match every `scores → (Scale)* → CausalMask → (Scale)* → Softmax →
/// context` attention motif, anchored on the `CausalMask` nodes.
fn match_attention_groups(
    graph: &Graph,
    seq: usize,
    producer: &[Option<NodeId>],
    consumers: &[Vec<NodeId>],
) -> Result<Vec<AttnGroup>, PtqError> {
    // Walk a value upward through Scale nodes to its non-Scale producer.
    let up_through_scale = |mut v: ValueId| -> Option<NodeId> {
        loop {
            let n = producer[v]?;
            match graph.nodes[n].op {
                Op::Scale(_) => v = graph.nodes[n].inputs[0],
                _ => return Some(n),
            }
        }
    };
    // Walk a value downward through Scale nodes to its sole non-Scale
    // consumer (None when fan-out or a dead end breaks the motif).
    let down_through_scale = |mut v: ValueId| -> Option<NodeId> {
        loop {
            let cs = consumers[v].as_slice();
            if cs.len() != 1 {
                return None;
            }
            match graph.nodes[cs[0]].op {
                Op::Scale(_) => v = graph.nodes[cs[0]].output,
                _ => return Some(cs[0]),
            }
        }
    };
    // Match `src → Reshape([seq, heads, dh]) → Permute(perm)` feeding a
    // cache-backed bmm, returning (src, heads, dh).
    let match_side = |val: ValueId,
                      perm_want: &[usize],
                      reader: NodeId,
                      side: &str|
     -> Result<(NodeId, usize, usize), PtqError> {
        let anchor = &graph.nodes[reader];
        let pn = producer[val]
            .filter(|&n| matches!(&graph.nodes[n].op, Op::Permute(p) if p[..] == *perm_want))
            .ok_or_else(|| {
                unsupported(
                    anchor,
                    format!("{side} operand is not Permute({perm_want:?})"),
                )
            })?;
        if consumers[graph.nodes[pn].output].len() != 1 {
            return Err(unsupported(
                anchor,
                format!("{side} permute output fans out beyond the attention bmm"),
            ));
        }
        let rv = graph.nodes[pn].inputs[0];
        let rn = producer[rv]
            .filter(
                |&n| matches!(&graph.nodes[n].op, Op::Reshape(t) if t.len() == 3 && t[0] == seq),
            )
            .ok_or_else(|| {
                unsupported(
                    anchor,
                    format!("{side} chain is not Reshape([{seq}, heads, dh]) → Permute"),
                )
            })?;
        if consumers[rv].len() != 1 {
            return Err(unsupported(
                anchor,
                format!("{side} reshape output fans out beyond the permute"),
            ));
        }
        let (heads, dh) = match &graph.nodes[rn].op {
            Op::Reshape(t) => (t[1], t[2]),
            _ => unreachable!("filtered above"),
        };
        let src = producer[graph.nodes[rn].inputs[0]].ok_or_else(|| {
            unsupported(
                anchor,
                format!("{side} rows come from a graph input, not a node"),
            )
        })?;
        Ok((src, heads, dh))
    };

    let mut groups = Vec::new();
    for (mi, mask) in graph.nodes.iter().enumerate() {
        if !matches!(mask.op, Op::CausalMask) {
            continue;
        }
        let sn = up_through_scale(mask.inputs[0])
            .filter(|&n| matches!(graph.nodes[n].op, Op::BatchMatMul))
            .ok_or_else(|| unsupported(mask, "mask input is not (scaled) bmm scores"))?;
        let softmax = down_through_scale(mask.output)
            .filter(|&n| matches!(graph.nodes[n].op, Op::Softmax))
            .ok_or_else(|| unsupported(mask, "mask output does not feed a softmax"))?;
        let cn = down_through_scale(graph.nodes[softmax].output)
            .filter(|&n| {
                matches!(graph.nodes[n].op, Op::BatchMatMul)
                    && producer[graph.nodes[n].inputs[0]].is_some()
            })
            .ok_or_else(|| unsupported(mask, "softmax output does not feed the context bmm"))?;
        let (k_src, kh, kdh) = match_side(graph.nodes[sn].inputs[1], &[1, 2, 0], sn, "key")?;
        let (v_src, vh, vdh) = match_side(graph.nodes[cn].inputs[1], &[1, 0, 2], cn, "value")?;
        if (kh, kdh) != (vh, vdh) {
            return Err(unsupported(
                &graph.nodes[mi],
                format!("key heads/dh ({kh}, {kdh}) disagree with value ({vh}, {vdh})"),
            ));
        }
        groups.push(AttnGroup {
            scores: sn,
            context: cn,
            k_src,
            v_src,
            heads: kh,
            dh: kdh,
        });
    }
    Ok(groups)
}

impl DecodePlan {
    /// The full-window prefill plan.
    pub fn prefill_plan(&self) -> &ExecPlan {
        &self.prefill
    }

    /// Window size (= cache position capacity).
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// Cached row width (`heads * dh`).
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Number of matched attention layers.
    pub fn n_layers(&self) -> usize {
        self.groups.len()
    }

    /// Statically validate the step schedule by propagating single-row
    /// shapes through it (with the cache at its `seq` high-water length),
    /// reusing the full validator's per-op shape rules for `Eval` nodes.
    fn check_step_shapes(&self, graph: &Graph) -> Result<(), PtqError> {
        let mut shapes: Vec<Option<Shape>> = vec![None; graph.n_values];
        shapes[graph.inputs[0]] = Some(vec![1]);
        for (&id, t) in &graph.params {
            shapes[id] = Some(t.shape().to_vec());
        }
        for (i, node) in self.step_nodes.iter().enumerate() {
            let out = match &self.steps[i] {
                StepOp::Skip => continue,
                StepOp::Eval { .. } => graph.infer_node_shape(node, &shapes)?,
                StepOp::AddPosRow { param } => {
                    let table = graph.params.get(param).ok_or(PtqError::UnboundParam {
                        value: *param,
                        node: node.name.clone(),
                    })?;
                    let x = shapes[node.inputs[0]]
                        .clone()
                        .ok_or(PtqError::UseBeforeDef {
                            value: node.inputs[0],
                            node: node.name.clone(),
                        })?;
                    if x.len() != table.ndim() || x[0] != 1 || x[1..] != table.shape()[1..] {
                        return Err(PtqError::ShapeMismatch {
                            node: node.name.clone(),
                            detail: format!(
                                "step row {x:?} cannot take a row of the positional table {:?}",
                                table.shape()
                            ),
                        });
                    }
                    x
                }
                StepOp::Scores { group } => {
                    let g = &self.groups[*group];
                    let want = vec![g.heads, 1, g.dh];
                    let got = shapes[node.inputs[0]].clone();
                    if got.as_deref() != Some(&want[..]) {
                        return Err(PtqError::ShapeMismatch {
                            node: node.name.clone(),
                            detail: format!("step query is {got:?}, cache wants {want:?}"),
                        });
                    }
                    vec![g.heads, 1, self.seq]
                }
                StepOp::Context { group } => {
                    let g = &self.groups[*group];
                    let want = vec![g.heads, 1, self.seq];
                    let got = shapes[node.inputs[0]].clone();
                    if got.as_deref() != Some(&want[..]) {
                        return Err(PtqError::ShapeMismatch {
                            node: node.name.clone(),
                            detail: format!("step probs are {got:?}, cache wants {want:?}"),
                        });
                    }
                    vec![g.heads, 1, g.dh]
                }
            };
            shapes[node.output] = Some(out);
        }
        match shapes[self.output].as_deref() {
            Some([1, _]) => Ok(()),
            other => Err(PtqError::DecodeUnsupported {
                node: "<output>".into(),
                detail: format!("step output must be one [1, vocab] row, got {other:?}"),
            }),
        }
    }

    /// Cheap structural compatibility check before touching the graph.
    fn check_compat(&self, graph: &Graph) -> Result<(), PtqError> {
        if graph.nodes.len() != self.n_nodes || graph.n_values != self.n_values {
            return Err(PtqError::InvalidTarget {
                detail: format!(
                    "decode plan was built for a graph with {} nodes / {} values, got {} / {}",
                    self.n_nodes,
                    self.n_values,
                    graph.nodes.len(),
                    graph.n_values
                ),
            });
        }
        Ok(())
    }
}

/// Captures the K/V source activations of a prefill pass while
/// delegating every hook decision to the wrapped session hook.
struct PrefillCapture<'a> {
    inner: &'a mut dyn ExecHook,
    wanted: HashMap<NodeId, Vec<(usize, KvSide)>>,
    captured: HashMap<(usize, KvSide), Tensor>,
}

impl ExecHook for PrefillCapture<'_> {
    fn before_node(&mut self, node: &Node, inputs: &mut [Tensor]) {
        self.inner.before_node(node, inputs);
    }

    fn after_node(&mut self, node: &Node, output: &mut Tensor) {
        self.inner.after_node(node, output);
        // Capture after the inner hook so the cache holds exactly the
        // rows the full-window attention consumed.
        if let Some(targets) = self.wanted.get(&node.id) {
            for t in targets {
                self.captured.insert(*t, output.clone());
            }
        }
    }

    fn weight(&mut self, node: &Node, id: ValueId, w: &Tensor) -> Option<Tensor> {
        self.inner.weight(node, id, w)
    }

    fn weight_ref<'a>(&'a self, node: &Node, id: ValueId, w: &'a Tensor) -> Option<&'a Tensor> {
        (*self.inner).weight_ref(node, id, w)
    }

    fn weight_q<'a>(
        &'a self,
        node: &Node,
        id: ValueId,
        w: &Tensor,
    ) -> Option<&'a ptq_tensor::QTensor> {
        (*self.inner).weight_q(node, id, w)
    }

    fn quantize_act(
        &mut self,
        node: &Node,
        input: usize,
        x: &Tensor,
        out: &mut QActTensor,
    ) -> bool {
        self.inner.quantize_act(node, input, x, out)
    }

    fn kernel_path(&self) -> ptq_tensor::ops::KernelPath {
        (*self.inner).kernel_path()
    }

    fn kv_cache(&self, node: &Node, side: KvSide) -> KvCachePolicy {
        (*self.inner).kv_cache(node, side)
    }
}

/// Mutable decode session state: the KV cache plus step-persistent value
/// slots. One `DecodeState` serves one generation session; `reset` (or a
/// fresh `prefill`) starts another without dropping warmed buffers.
#[derive(Debug, Default)]
pub struct DecodeState {
    /// Per-layer K/V cache; built by `prefill` (policies need prefill
    /// activations to calibrate static scales).
    cache: Option<KvCache>,
    /// One step-persistent tensor per graph value. Sized on first use,
    /// reused (via `reuse_as`) every step after — steady-state steps
    /// perform no intermediate-tensor allocation.
    values: Vec<Tensor>,
    /// Hook-visible input staging, as in the planned executor.
    staging: Vec<Tensor>,
    /// Owned parameter substitutions for the node currently executing.
    owned: [Option<Tensor>; MAX_OP_PARAMS],
    /// FP8 activation-code buffers for `quantize_act`.
    acts: Vec<QActTensor>,
    /// Non-tensor scratch (embedding id decode).
    scratch: EvalScratch,
    /// Staging for the single token id.
    input: Tensor,
    /// Next absolute position (= tokens consumed so far).
    pos: usize,
}

impl DecodeState {
    /// Fresh state sized for `plan`.
    pub fn new(plan: &DecodePlan) -> Self {
        let mut s = DecodeState::default();
        s.values.resize_with(plan.n_values, Tensor::default);
        s.staging.resize_with(plan.max_arity, Tensor::default);
        s.acts.resize_with(MAX_ACT_INPUTS, QActTensor::new);
        s
    }

    /// Next absolute position (tokens consumed so far).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// The cache, once `prefill` has built it.
    pub fn cache(&self) -> Option<&KvCache> {
        self.cache.as_ref()
    }

    /// Current cache storage bytes (0 before prefill).
    pub fn cache_bytes(&self) -> usize {
        self.cache.as_ref().map_or(0, KvCache::cache_bytes)
    }

    /// Forget the session (cache and position); keeps warmed buffers.
    pub fn reset(&mut self) {
        self.cache = None;
        self.pos = 0;
    }

    /// Run the full-window prefill over `prompt` (a rank-1 tensor of
    /// token ids), populate the cache with positions `0..prompt.len()`,
    /// and return the logits row for the last prompt token.
    ///
    /// The prompt is left-aligned and zero-padded to the window; the
    /// causal mask keeps every real row blind to the padding. FP8 cache
    /// policies with `scale: None` are calibrated here from the captured
    /// prefill activations.
    pub fn prefill(
        &mut self,
        plan: &DecodePlan,
        graph: &Graph,
        prompt: &Tensor,
        hook: &mut dyn ExecHook,
    ) -> Result<Tensor, PtqError> {
        plan.check_compat(graph)?;
        if prompt.ndim() != 1 {
            return Err(PtqError::InvalidInput {
                node: "decode.prefill".into(),
                detail: format!(
                    "prompt must be a rank-1 id tensor, got {:?}",
                    prompt.shape()
                ),
            });
        }
        let p = prompt.len();
        if p == 0 {
            return Err(PtqError::InvalidInput {
                node: "decode.prefill".into(),
                detail: "zero-length prefill: a session needs at least one prompt token".into(),
            });
        }
        if p > plan.seq {
            return Err(PtqError::KvCache(KvError::CapacityOverflow {
                capacity: plan.seq,
            }));
        }
        let mut sp = ptq_trace::span(ptq_trace::Level::Info, "decode.prefill");

        let mut padded = vec![0.0f32; plan.seq];
        padded[..p].copy_from_slice(prompt.data());
        let padded = Tensor::from_vec(padded, &[plan.seq]);

        let mut wanted: HashMap<NodeId, Vec<(usize, KvSide)>> = HashMap::new();
        for (gi, g) in plan.groups.iter().enumerate() {
            wanted.entry(g.k_src).or_default().push((gi, KvSide::K));
            wanted.entry(g.v_src).or_default().push((gi, KvSide::V));
        }
        let mut capture = PrefillCapture {
            inner: hook,
            wanted,
            captured: HashMap::new(),
        };
        let outs = plan.prefill.run(graph, &[padded], &mut capture)?;
        let captured = capture.captured;

        // Build the cache: probe the session policy per buffer, calibrate
        // pending static scales from the captured prefill rows.
        let d = plan.d_model;
        let mut policies = Vec::with_capacity(plan.groups.len());
        for (gi, g) in plan.groups.iter().enumerate() {
            let policy_for = |src: NodeId, side: KvSide| -> Result<KvCachePolicy, PtqError> {
                let rows = captured.get(&(gi, side)).ok_or_else(|| {
                    PtqError::Internal(format!("prefill did not capture layer {gi} {side} rows"))
                })?;
                Ok(hook
                    .kv_cache(&graph.nodes[src], side)
                    .calibrated(&rows.data()[..p * d]))
            };
            let kp = policy_for(g.k_src, KvSide::K)?;
            let vp = policy_for(g.v_src, KvSide::V)?;
            policies.push((kp, vp));
        }
        let mut cache = KvCache::new(&policies, d, plan.seq);
        for (gi, _) in plan.groups.iter().enumerate() {
            for side in [KvSide::K, KvSide::V] {
                let rows = &captured[&(gi, side)];
                for j in 0..p {
                    cache.append(gi, side, &rows.data()[j * d..(j + 1) * d])?;
                }
            }
        }
        ptq_trace::counter(
            ptq_trace::Level::Info,
            "kv.appended",
            (2 * plan.groups.len() * p) as u64,
            &[],
        );
        self.cache = Some(cache);
        self.pos = p;

        if sp.active() {
            sp.record_int("prompt_len", p as i64);
            sp.record_int("layers", plan.groups.len() as i64);
            sp.record_int("cache_bytes", self.cache_bytes() as i64);
        }
        drop(sp);
        Ok(Tensor::from_slice(outs[0].row(p - 1)))
    }

    /// Decode one token at the next position: append its K/V rows to the
    /// cache and return its logits row. `token` is the id chosen from the
    /// previous logits (greedy or sampled — the caller decides).
    pub fn step(
        &mut self,
        plan: &DecodePlan,
        graph: &Graph,
        token: f32,
        hook: &mut dyn ExecHook,
    ) -> Result<Tensor, PtqError> {
        plan.check_compat(graph)?;
        if self.cache.is_none() {
            return Err(PtqError::InvalidInput {
                node: "decode.step".into(),
                detail: "step before prefill: run prefill to seed the cache".into(),
            });
        }
        if self.pos >= plan.seq {
            return Err(PtqError::KvCache(KvError::CapacityOverflow {
                capacity: plan.seq,
            }));
        }
        let t = self.pos;
        let mut sp = ptq_trace::span(ptq_trace::Level::Info, "decode.step");
        let mut appended = 0u64;

        self.input.reuse_as(&[1]);
        self.input.data_mut()[0] = token;

        let DecodeState {
            cache,
            values,
            staging,
            owned,
            acts,
            scratch,
            input,
            pos,
        } = self;
        let cache = match cache.as_mut() {
            Some(c) => c,
            None => unreachable!("checked above"),
        };

        for (i, op) in plan.steps.iter().enumerate() {
            let node = &plan.step_nodes[i];
            match op {
                StepOp::Skip => continue,
                StepOp::Scores { group } => {
                    let g = &plan.groups[*group];
                    staging[0].copy_from(&values[node.inputs[0]]);
                    let out = &mut values[node.output];
                    attention_step_q(
                        &staging[0],
                        cache.buf(*group, KvSide::K)?,
                        out,
                        hook.kernel_path(),
                    );
                    debug_assert_eq!(out.dim(0), g.heads);
                }
                StepOp::Context { group } => {
                    staging[0].copy_from(&values[node.inputs[0]]);
                    let out = &mut values[node.output];
                    attention_step_v(
                        &staging[0],
                        cache.buf(*group, KvSide::V)?,
                        out,
                        hook.kernel_path(),
                    );
                }
                StepOp::AddPosRow { param } => {
                    match plan.srcs[i][0] {
                        StepSrc::Input => staging[0].copy_from(input),
                        StepSrc::Value(v) => staging[0].copy_from(&values[v]),
                    }
                    hook.before_node(node, &mut staging[..1]);
                    let table = resolve_single_param(graph, node, *param, owned, hook)?;
                    let cols = staging[0].len();
                    let out = &mut values[node.output];
                    out.reuse_as(staging[0].shape());
                    let row = &table.data()[t * cols..(t + 1) * cols];
                    for ((o, &x), &r) in out.data_mut().iter_mut().zip(staging[0].data()).zip(row) {
                        *o = x + r;
                    }
                    hook.after_node(node, out);
                }
                StepOp::Eval { appends } => {
                    let arity = node.inputs.len();
                    for (j, s) in plan.srcs[i].iter().enumerate() {
                        match s {
                            StepSrc::Input => staging[j].copy_from(input),
                            StepSrc::Value(v) => staging[j].copy_from(&values[*v]),
                        }
                    }
                    hook.before_node(node, &mut staging[..arity]);

                    let mut coded = [false; MAX_ACT_INPUTS];
                    for j in 0..arity.min(MAX_ACT_INPUTS) {
                        coded[j] = hook.quantize_act(node, j, &staging[j], &mut acts[j]);
                    }

                    // Parameter resolution, identical to the interpreter
                    // and planned executor: weight_q, then weight_ref,
                    // then the legacy owned weight(), then the binding.
                    let pids = node.op.param_values();
                    if pids.len() > MAX_OP_PARAMS {
                        return Err(PtqError::Internal(format!(
                            "node {} has {} parameters (max {MAX_OP_PARAMS})",
                            node.name,
                            pids.len()
                        )));
                    }
                    let mut ws: [Option<&Tensor>; MAX_OP_PARAMS] = [None; MAX_OP_PARAMS];
                    for o in owned.iter_mut() {
                        *o = None;
                    }
                    for (j, id) in pids.iter().enumerate() {
                        let w = graph.params.get(id).ok_or_else(|| PtqError::UnboundParam {
                            value: *id,
                            node: node.name.clone(),
                        })?;
                        ws[j] = Some(w);
                        if (*hook).weight_q(node, *id, w).is_none()
                            && (*hook).weight_ref(node, *id, w).is_none()
                        {
                            owned[j] = hook.weight(node, *id, w);
                        }
                    }
                    let frozen: &dyn ExecHook = &*hook;
                    let mut pr = ParamsRef::new();
                    for (j, id) in pids.iter().enumerate() {
                        let w = match ws[j] {
                            Some(w) => w,
                            None => {
                                return Err(PtqError::Internal(format!(
                                    "unresolved parameter {j} for node {}",
                                    node.name
                                )))
                            }
                        };
                        if let Some(o) = owned[j].as_ref() {
                            pr.set(j, o);
                        } else if let Some(q) = frozen.weight_q(node, *id, w) {
                            pr.set_q(j, q);
                        } else if let Some(r) = frozen.weight_ref(node, *id, w) {
                            pr.set(j, r);
                        } else {
                            pr.set(j, w);
                        }
                    }

                    let mut ar = ActsRef::new();
                    for (j, buf) in acts.iter().enumerate() {
                        if coded[j] {
                            ar.set(j, buf);
                        }
                    }

                    let out = &mut values[node.output];
                    let path = frozen.kernel_path();
                    crate::exec::eval_node_into(
                        node,
                        &staging[..arity],
                        &pr,
                        &ar,
                        scratch,
                        out,
                        path,
                    )?;
                    hook.after_node(node, out);

                    for &(layer, side) in appends {
                        let out = &values[node.output];
                        cache.append(layer, side, out.row(0))?;
                        appended += 1;
                    }
                }
            }
        }

        *pos = t + 1;
        if appended > 0 {
            ptq_trace::counter(ptq_trace::Level::Info, "kv.appended", appended, &[]);
        }
        if sp.active() {
            sp.record_int("pos", t as i64);
            sp.record_int("kv_len", *pos as i64);
            sp.record_int("cache_bytes", cache.cache_bytes() as i64);
        }
        drop(sp);
        Ok(Tensor::from_slice(values[plan.output].row(0)))
    }
}

/// Resolve one parameter through the full hook protocol, returning a
/// borrowed view (owned substitutions land in `owned[0]`).
fn resolve_single_param<'a>(
    graph: &'a Graph,
    node: &Node,
    id: ValueId,
    owned: &'a mut [Option<Tensor>; MAX_OP_PARAMS],
    hook: &'a mut dyn ExecHook,
) -> Result<&'a Tensor, PtqError> {
    let w = graph
        .params
        .get(&id)
        .ok_or_else(|| PtqError::UnboundParam {
            value: id,
            node: node.name.clone(),
        })?;
    owned[0] = None;
    if (*hook).weight_ref(node, id, w).is_none() {
        owned[0] = hook.weight(node, id, w);
    }
    if let Some(o) = owned[0].as_ref() {
        return Ok(o);
    }
    let frozen: &dyn ExecHook = &*hook;
    Ok(frozen.weight_ref(node, id, w).unwrap_or(w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::error::UnwrapOk;
    use crate::interp::NoopHook;
    use ptq_fp8::Fp8Format;
    use ptq_tensor::TensorRng;

    const SEQ: usize = 8;
    const D: usize = 12;
    const HEADS: usize = 3;
    const DH: usize = D / HEADS;
    const VOCAB: usize = 17;

    /// A 1-layer causal decoder built with the same node motif as the
    /// model-zoo builder: embed → +pos → attention(+residual) → head.
    fn tiny_decoder(seed: u64) -> Graph {
        let mut rng = TensorRng::seed(seed);
        let mut b = GraphBuilder::new();
        let ids = b.input();
        let table = b.param(rng.normal(&[VOCAB, D], 0.0, 0.4));
        let pos = b.param(rng.normal(&[SEQ, D], 0.0, 0.1));
        let e = b.embedding(ids, table);
        let x = b.add_param(e, pos);

        let wq = b.param(rng.kaiming(&[D, D]));
        let wk = b.param(rng.kaiming(&[D, D]));
        let wv = b.param(rng.kaiming(&[D, D]));
        let wo = b.param(rng.kaiming(&[D, D]));
        let q = b.linear(x, wq, None);
        let k = b.linear(x, wk, None);
        let v = b.linear(x, wv, None);
        let qh = b.reshape(q, &[SEQ, HEADS, DH]);
        let qh = b.permute(qh, &[1, 0, 2]);
        let kh = b.reshape(k, &[SEQ, HEADS, DH]);
        let kh = b.permute(kh, &[1, 2, 0]);
        let vh = b.reshape(v, &[SEQ, HEADS, DH]);
        let vh = b.permute(vh, &[1, 0, 2]);
        let scores = b.batch_matmul(qh, kh);
        let scores = b.scale(scores, 1.0 / (DH as f32).sqrt());
        let masked = b.causal_mask(scores);
        let probs = b.softmax(masked);
        let ctx = b.batch_matmul(probs, vh);
        let ctx = b.permute(ctx, &[1, 0, 2]);
        let ctx = b.reshape(ctx, &[SEQ, D]);
        let attn = b.linear(ctx, wo, None);
        let x = b.add(x, attn);

        let wh = b.param(rng.kaiming(&[VOCAB, D]));
        let logits = b.linear(x, wh, None);
        b.finish(vec![logits])
    }

    /// Full-window oracle: forward `[tokens..., 0-pad]` and read row `t`.
    fn full_window_row(graph: &Graph, tokens: &[f32], t: usize) -> Tensor {
        let mut padded = vec![0.0f32; SEQ];
        padded[..tokens.len()].copy_from_slice(tokens);
        let out = graph
            .infer(&[Tensor::from_vec(padded, &[SEQ])])
            .unwrap_ok()
            .remove(0);
        Tensor::from_slice(out.row(t))
    }

    /// Hook selecting an FP8 cache with calibration-pending static scale.
    struct Fp8CacheHook(Fp8Format);
    impl ExecHook for Fp8CacheHook {
        fn kv_cache(&self, _node: &Node, _side: KvSide) -> KvCachePolicy {
            KvCachePolicy::Fp8 {
                format: self.0,
                scale: None,
            }
        }
    }

    #[test]
    fn incremental_f32_cache_is_bit_identical_to_full_window() {
        let g = tiny_decoder(3);
        let plan = g.plan_decode(SEQ).unwrap_ok();
        assert_eq!(plan.n_layers(), 1);
        assert_eq!(plan.d_model(), D);

        let mut st = DecodeState::new(&plan);
        let prompt = [3.0f32, 7.0, 1.0];
        let mut tokens: Vec<f32> = prompt.to_vec();
        let logits = st
            .prefill(&plan, &g, &Tensor::from_slice(&prompt), &mut NoopHook)
            .unwrap_ok();
        let oracle = full_window_row(&g, &tokens, tokens.len() - 1);
        assert_eq!(logits, oracle, "prefill logits row");

        let mut next = logits.argmax() as f32;
        while tokens.len() < SEQ {
            tokens.push(next);
            let logits = st.step(&plan, &g, next, &mut NoopHook).unwrap_ok();
            let oracle = full_window_row(&g, &tokens, tokens.len() - 1);
            for (i, (a, b)) in logits.data().iter().zip(oracle.data()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "step at pos {} logit {i}",
                    tokens.len() - 1
                );
            }
            next = logits.argmax() as f32;
        }
        // The window is full: one more step must fail typed, not panic.
        assert!(matches!(
            st.step(&plan, &g, next, &mut NoopHook),
            Err(PtqError::KvCache(KvError::CapacityOverflow {
                capacity: SEQ
            }))
        ));
    }

    #[test]
    fn fp8_cache_drift_is_bounded() {
        let g = tiny_decoder(5);
        let plan = g.plan_decode(SEQ).unwrap_ok();
        let prompt = Tensor::from_slice(&[2.0, 9.0, 4.0, 1.0]);

        let mut f32_state = DecodeState::new(&plan);
        let mut fp8_state = DecodeState::new(&plan);
        let mut hook = Fp8CacheHook(Fp8Format::E4M3);
        f32_state
            .prefill(&plan, &g, &prompt, &mut NoopHook)
            .unwrap_ok();
        fp8_state.prefill(&plan, &g, &prompt, &mut hook).unwrap_ok();

        let a = f32_state.step(&plan, &g, 6.0, &mut NoopHook).unwrap_ok();
        let b = fp8_state.step(&plan, &g, 6.0, &mut hook).unwrap_ok();
        let denom: f32 = a.data().iter().map(|v| v * v).sum::<f32>().max(1e-12);
        let err: f32 = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y) * (x - y))
            .sum();
        assert!(
            err / denom < 1e-3,
            "relative FP8 cache drift {}",
            err / denom
        );

        // And the storage win: strictly under a third of the f32 bytes.
        let cache = fp8_state.cache().expect("prefilled");
        assert!(cache.cache_bytes() * 3 < cache.f32_bytes());
        // Static scales calibrated from the prefill activations.
        for side in [KvSide::K, KvSide::V] {
            match cache.buf(0, side).unwrap().policy() {
                KvCachePolicy::Fp8 { scale: Some(s), .. } => assert!(s.is_finite() && s > 0.0),
                p => panic!("expected calibrated static scale, got {p:?}"),
            }
        }
    }

    #[test]
    fn step_shapes_keep_masked_softmax_nan_free() {
        // Satellite regression: a step-shaped `[b, 1, s]` mask row plus
        // softmax must never re-mask emitted positions or produce NaN,
        // even when every score is -inf (the all-masked guard).
        let mut b = GraphBuilder::new();
        let x = b.input();
        let m = b.causal_mask(x);
        let s = b.softmax(m);
        let g = b.finish(vec![s]);
        // validate() accepts the bottom-aligned step shape.
        g.validate(&[vec![2, 1, 5]]).unwrap_ok();
        let step_row = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 1, 3]);
        let out = g
            .infer(std::slice::from_ref(&step_row))
            .unwrap_ok()
            .remove(0);
        // s1 == 1 bottom-aligned: nothing masked, plain softmax rows.
        assert!(out.data().iter().all(|p| p.is_finite() && *p > 0.0));
        let all_neg_inf = Tensor::from_vec(vec![f32::NEG_INFINITY; 4], &[1, 1, 4]);
        let out = g.infer(&[all_neg_inf]).unwrap_ok().remove(0);
        assert!(out.data().iter().all(|p| *p == 0.0), "guard row: {out:?}");
    }

    #[test]
    fn planner_rejects_non_decoders() {
        // Pooling head: MeanRows mixes rows across the window.
        let mut rng = TensorRng::seed(13);
        let mut b = GraphBuilder::new();
        let ids = b.input();
        let table = b.param(rng.normal(&[VOCAB, D], 0.0, 0.4));
        let e = b.embedding(ids, table);
        let m = b.mean_rows(e);
        let wh = b.param(rng.kaiming(&[VOCAB, D]));
        let logits = b.linear(m, wh, None);
        let g = b.finish(vec![logits]);
        assert!(matches!(
            g.plan_decode(SEQ),
            Err(PtqError::DecodeUnsupported { .. })
        ));

        // Free-standing bmm without a causal mask (non-causal attention).
        let mut b = GraphBuilder::new();
        let ids = b.input();
        let table = b.param(rng.normal(&[VOCAB, SEQ], 0.0, 0.4));
        let e = b.embedding(ids, table);
        let r = b.reshape(e, &[1, SEQ, SEQ]);
        let y = b.batch_matmul(r, r);
        let g = b.finish(vec![y]);
        assert!(matches!(
            g.plan_decode(SEQ),
            Err(PtqError::DecodeUnsupported { .. })
        ));
    }

    #[test]
    fn prefill_input_contracts_are_typed() {
        let g = tiny_decoder(7);
        let plan = g.plan_decode(SEQ).unwrap_ok();
        let mut st = DecodeState::new(&plan);
        assert!(matches!(
            st.prefill(&plan, &g, &Tensor::zeros(&[0]), &mut NoopHook),
            Err(PtqError::InvalidInput { .. })
        ));
        assert!(matches!(
            st.prefill(&plan, &g, &Tensor::zeros(&[2, 2]), &mut NoopHook),
            Err(PtqError::InvalidInput { .. })
        ));
        assert!(matches!(
            st.prefill(&plan, &g, &Tensor::zeros(&[SEQ + 1]), &mut NoopHook),
            Err(PtqError::KvCache(KvError::CapacityOverflow { .. }))
        ));
        // Step before prefill is a typed contract violation, not a panic.
        assert!(matches!(
            st.step(&plan, &g, 1.0, &mut NoopHook),
            Err(PtqError::InvalidInput { .. })
        ));
    }
}
