//! The single shared per-node compute path.
//!
//! Both the legacy interpreter ([`Graph::run`](crate::Graph::run)) and the
//! ahead-of-time planner ([`crate::ExecPlan`]) evaluate nodes through
//! [`eval_node_into`], so planned execution is bit-identical to interpreted
//! execution by construction: there is exactly one implementation of every
//! operator's evaluation, and it writes through the allocation-reusing
//! `*_into` kernels of `ptq_tensor::ops`.

use crate::error::PtqError;
use crate::graph::{Node, Op};
use ptq_tensor::ops;
use ptq_tensor::{QActTensor, QTensor, Tensor};

/// Upper bound on parameters any single operator references (BatchNorm's
/// gamma/beta/mean/var is the maximum).
pub(crate) const MAX_OP_PARAMS: usize = 4;

/// Upper bound on activation inputs a node can bind as FP8 codes
/// (MatMul's two operands is the maximum).
pub(crate) const MAX_ACT_INPUTS: usize = 2;

/// One resolved parameter binding: either a dense f32 tensor or an
/// FP8-stored [`QTensor`] executed by the fused kernels.
#[derive(Clone, Copy)]
pub(crate) enum PRef<'a> {
    F32(&'a Tensor),
    Q(&'a QTensor),
}

/// Borrowed parameter bindings for one node, in
/// [`Op::param_values`](crate::Op::param_values) order. Fixed-size so the
/// executor resolves parameters with zero heap traffic per node.
pub(crate) struct ParamsRef<'a> {
    items: [Option<PRef<'a>>; MAX_OP_PARAMS],
}

impl<'a> ParamsRef<'a> {
    pub(crate) fn new() -> Self {
        ParamsRef {
            items: [None; MAX_OP_PARAMS],
        }
    }

    pub(crate) fn set(&mut self, i: usize, t: &'a Tensor) {
        self.items[i] = Some(PRef::F32(t));
    }

    pub(crate) fn set_q(&mut self, i: usize, q: &'a QTensor) {
        self.items[i] = Some(PRef::Q(q));
    }

    fn get(&self, node: &Node, i: usize) -> Result<PRef<'a>, PtqError> {
        self.items.get(i).copied().flatten().ok_or_else(|| {
            PtqError::Internal(format!("missing parameter {i} for node {}", node.name))
        })
    }

    /// Resolve parameter `i` as a dense f32 tensor. Only weight slot 0 of
    /// Conv2d/Linear may bind a [`QTensor`]; every other parameter
    /// (biases, norm statistics, embedding tables) must be f32, so a `Q`
    /// binding here is an internal protocol violation, not a user error.
    fn get_f32(&self, node: &Node, i: usize) -> Result<&'a Tensor, PtqError> {
        match self.get(node, i)? {
            PRef::F32(t) => Ok(t),
            PRef::Q(_) => Err(PtqError::Internal(format!(
                "parameter {i} for node {} is FP8-stored but the operator needs f32",
                node.name
            ))),
        }
    }
}

/// Borrowed FP8 activation-code bindings for one node, by input index.
/// An entry is `Some` when the hook quantized that input at the op
/// boundary ([`crate::ExecHook::quantize_act`]); the executor then runs
/// the node through a code×code kernel and never reads the staged f32
/// input.
pub(crate) struct ActsRef<'a> {
    items: [Option<&'a QActTensor>; MAX_ACT_INPUTS],
}

impl<'a> ActsRef<'a> {
    pub(crate) fn new() -> Self {
        ActsRef {
            items: [None; MAX_ACT_INPUTS],
        }
    }

    pub(crate) fn set(&mut self, i: usize, q: &'a QActTensor) {
        self.items[i] = Some(q);
    }

    fn get(&self, i: usize) -> Option<&'a QActTensor> {
        self.items.get(i).copied().flatten()
    }

    fn is_empty(&self) -> bool {
        self.items.iter().all(Option::is_none)
    }
}

/// Reusable non-tensor scratch buffers for [`eval_node_into`].
#[derive(Debug, Default)]
pub(crate) struct EvalScratch {
    /// Decoded embedding ids (cleared per use, capacity reused).
    pub ids: Vec<usize>,
}

/// Evaluate one node into `out`, reusing `out`'s allocation.
///
/// `ins` are the (possibly hook-mutated) activation inputs and `params`
/// the resolved parameter tensors in `param_values()` order. Arity and
/// shapes must already be validated; the only runtime failures left are
/// data-dependent contracts (embedding id values) and internal
/// inconsistencies.
pub(crate) fn eval_node_into(
    node: &Node,
    ins: &[Tensor],
    params: &ParamsRef<'_>,
    acts: &ActsRef<'_>,
    scratch: &mut EvalScratch,
    out: &mut Tensor,
    path: ops::KernelPath,
) -> Result<(), PtqError> {
    // Activation codes are only executable by the code×code kernels of
    // Conv2d (non-depthwise), Linear and MatMul; a binding anywhere else
    // is a hook protocol violation, not a user error.
    if !acts.is_empty() && !matches!(node.op, Op::Conv2d { .. } | Op::Linear { .. } | Op::MatMul) {
        return Err(PtqError::Internal(format!(
            "activation codes bound for node {} ({}), which has no code\u{d7}code kernel",
            node.name,
            node.op.class()
        )));
    }
    match &node.op {
        Op::Conv2d {
            bias,
            params: cp,
            depthwise,
            ..
        } => {
            let b = match bias {
                Some(_) => Some(params.get_f32(node, 1)?),
                None => None,
            };
            match (params.get(node, 0)?, *depthwise, acts.get(0)) {
                (PRef::Q(w), false, Some(xa)) => ops::conv2d_qq_into_path(xa, w, b, *cp, out, path),
                (PRef::F32(w), true, None) => ops::depthwise_conv2d_into(&ins[0], w, b, *cp, out),
                (PRef::F32(w), false, None) => ops::conv2d_into(&ins[0], w, b, *cp, out),
                (PRef::Q(w), true, None) => ops::depthwise_conv2d_q_into(&ins[0], w, b, *cp, out),
                (PRef::Q(w), false, None) => ops::conv2d_q_into_path(&ins[0], w, b, *cp, out, path),
                _ => {
                    return Err(PtqError::Internal(format!(
                        "activation codes for node {} need a non-depthwise FP8-stored weight",
                        node.name
                    )))
                }
            }
        }
        Op::Linear { bias, .. } => {
            let b = match bias {
                Some(_) => Some(params.get_f32(node, 1)?),
                None => None,
            };
            match (params.get(node, 0)?, acts.get(0)) {
                (PRef::Q(w), Some(xa)) => ops::linear_qq_into_path(xa, w, b, out, path),
                (PRef::F32(w), None) => ops::linear_into(&ins[0], w, b, out),
                (PRef::Q(w), None) => ops::linear_q_into_path(&ins[0], w, b, out, path),
                (PRef::F32(_), Some(_)) => {
                    return Err(PtqError::Internal(format!(
                        "activation codes for node {} need an FP8-stored weight",
                        node.name
                    )))
                }
            }
        }
        Op::MatMul => match (acts.get(0), acts.get(1)) {
            (Some(a), Some(b)) => ops::matmul_qq_into_path(a, b, out, path),
            (None, None) => ops::matmul_into(&ins[0], &ins[1], out),
            _ => {
                return Err(PtqError::Internal(format!(
                    "matmul node {} needs both operands coded or neither",
                    node.name
                )))
            }
        },
        Op::BatchMatMul => ops::batch_matmul_into(&ins[0], &ins[1], out),
        Op::Embedding { .. } => {
            let t = params.get_f32(node, 0)?;
            let vocab = t.dim(0);
            scratch.ids.clear();
            for &x in ins[0].data() {
                // Ids arrive as f32; only finite non-negative integers
                // inside the table are valid. `as usize` would silently
                // saturate negatives/NaN to 0 and out-of-range ids
                // would blow up inside the kernel.
                if !x.is_finite() || x < 0.0 || x.fract() != 0.0 {
                    return Err(PtqError::InvalidInput {
                        node: node.name.clone(),
                        detail: format!("embedding id {x} is not a non-negative integer"),
                    });
                }
                let id = x as usize;
                if id >= vocab {
                    return Err(PtqError::InvalidInput {
                        node: node.name.clone(),
                        detail: format!("embedding id {id} out of range (vocab {vocab})"),
                    });
                }
                scratch.ids.push(id);
            }
            ops::embedding_into(t, &scratch.ids, out);
        }
        Op::BatchNorm { eps, .. } => {
            let gamma = params.get_f32(node, 0)?;
            let beta = params.get_f32(node, 1)?;
            let mean = params.get_f32(node, 2)?;
            let var = params.get_f32(node, 3)?;
            ops::batchnorm2d_parts_into(&ins[0], gamma, beta, mean, var, *eps, out);
        }
        Op::LayerNorm { eps, .. } => {
            let g = params.get_f32(node, 0)?;
            let b = params.get_f32(node, 1)?;
            ops::layernorm_into(&ins[0], g, b, *eps, out);
        }
        Op::Add => ins[0].zip_broadcast_into(&ins[1], |a, b| a + b, out),
        Op::Mul => ins[0].zip_broadcast_into(&ins[1], |a, b| a * b, out),
        Op::AddParam { .. } => {
            let p = params.get_f32(node, 0)?;
            ins[0].zip_broadcast_into(p, |a, b| a + b, out);
        }
        Op::Relu => ops::relu_into(&ins[0], out),
        Op::Gelu => ops::gelu_into(&ins[0], out),
        Op::Silu => ops::silu_into(&ins[0], out),
        Op::Sigmoid => ops::sigmoid_into(&ins[0], out),
        Op::Tanh => ops::tanh_into(&ins[0], out),
        Op::Softmax => ops::softmax_lastdim_into(&ins[0], out),
        Op::MaxPool { k } => ops::max_pool2d_into(&ins[0], *k, out),
        Op::AvgPool { k } => ops::avg_pool2d_into(&ins[0], *k, out),
        Op::GlobalAvgPool => ops::global_avg_pool2d_into(&ins[0], out),
        Op::MeanRows => {
            let x = &ins[0];
            let (r, d) = (x.dim(0), x.dim(1));
            out.reuse_as(&[1, d]);
            out.zero_fill();
            for i in 0..r {
                for j in 0..d {
                    out.data_mut()[j] += x.at(&[i, j]);
                }
            }
            let inv = 1.0 / r.max(1) as f32;
            out.map_inplace(|v| v * inv);
        }
        Op::Reshape(shape) => {
            // Element counts were proven equal by shape validation, so this
            // is a straight copy under the target shape.
            out.copy_from(&ins[0]);
            out.reuse_as(shape);
        }
        Op::Permute(perm) => ins[0].permute_into(perm, out),
        Op::Scale(s) => {
            let s = *s;
            ins[0].map_into(|x| x * s, out);
        }
        Op::Upsample2x => {
            let x = &ins[0];
            let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
            out.reuse_as(&[n, c, 2 * h, 2 * w]);
            for ni in 0..n {
                for ci in 0..c {
                    for y in 0..2 * h {
                        for xx in 0..2 * w {
                            *out.at_mut(&[ni, ci, y, xx]) = x.at(&[ni, ci, y / 2, xx / 2]);
                        }
                    }
                }
            }
        }
        Op::CausalMask => {
            // A true -inf (not the old -1e9 magic constant) so that no
            // attention mass can leak through the mask however large
            // the score scale is; softmax_lastdim turns fully masked
            // rows into zeros rather than NaN.
            //
            // Rectangular `[b, s1, s2]` scores (s1 < s2) are
            // *bottom-aligned*: the s1 query rows are the last s1 of an
            // s2-long key sequence, so row i sees keys `j <= i + (s2 -
            // s1)`. The square case reduces to the classic mask, and the
            // incremental-decode step (s1 == 1) masks nothing — the
            // single newest query row must not re-mask already-emitted
            // positions.
            let x = &ins[0];
            let (b, s1, s2) = (x.dim(0), x.dim(1), x.dim(2));
            let off = s2 - s1;
            out.copy_from(x);
            for bi in 0..b {
                for i in 0..s1 {
                    for j in (i + 1 + off)..s2 {
                        *out.at_mut(&[bi, i, j]) = f32::NEG_INFINITY;
                    }
                }
            }
        }
    }
    Ok(())
}
