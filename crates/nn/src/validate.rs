//! Graph validation and shape inference: the checks that make
//! [`Graph::run`](crate::Graph::run) panic-free.
//!
//! The contract is *validate-then-run*: [`Graph::validate`] walks the node
//! list once, proving input arity, parameter binding, def-before-use, and
//! every operator's shape preconditions (via [`ptq_tensor::shape`]) before
//! a single kernel executes. Execution after a successful validation can
//! only fail on *data-dependent* contracts (embedding id values), which the
//! interpreter checks itself.

use crate::error::{PtqError, Shape};
use crate::graph::{Graph, Node, Op, ValueId};
use ptq_tensor::shape;

impl Graph {
    /// Structural validation that needs no input shapes: the graph is
    /// non-empty, every parameter an operator references is bound, every
    /// activation input of every node is defined (by a graph input, a
    /// parameter, or an earlier node) before use, and every declared
    /// output is produced.
    pub fn validate_structure(&self) -> Result<(), PtqError> {
        if self.nodes.is_empty() {
            return Err(PtqError::EmptyGraph);
        }
        let mut produced = vec![false; self.n_values];
        for &i in &self.inputs {
            *produced
                .get_mut(i)
                .ok_or(PtqError::UnproducedOutput { value: i })? = true;
        }
        for &i in self.params.keys() {
            if let Some(p) = produced.get_mut(i) {
                *p = true;
            }
        }
        for node in &self.nodes {
            for &i in &node.inputs {
                if !produced.get(i).copied().unwrap_or(false) {
                    return Err(PtqError::UseBeforeDef {
                        value: i,
                        node: node.name.clone(),
                    });
                }
            }
            for p in node.op.param_values() {
                if !self.params.contains_key(&p) {
                    return Err(PtqError::UnboundParam {
                        value: p,
                        node: node.name.clone(),
                    });
                }
            }
            if let Some(slot) = produced.get_mut(node.output) {
                *slot = true;
            } else {
                return Err(PtqError::UnproducedOutput { value: node.output });
            }
        }
        for &o in &self.outputs {
            if !produced.get(o).copied().unwrap_or(false) {
                return Err(PtqError::UnproducedOutput { value: o });
            }
        }
        Ok(())
    }

    /// Full validation pass: [`Graph::validate_structure`] plus shape
    /// inference of every node over the given runtime input shapes.
    /// Returns the inferred output shapes on success; the first violated
    /// arity/binding/shape rule otherwise.
    pub fn validate(&self, inputs: &[Shape]) -> Result<Vec<Shape>, PtqError> {
        let shapes = self.value_shapes(inputs)?;
        Ok(self
            .outputs
            .iter()
            .map(|&o| shapes[o].clone().unwrap_or_default())
            .collect())
    }

    /// The full per-value shape table behind [`Graph::validate`]: runs the
    /// same structural + shape checks and returns the inferred shape of
    /// *every* value (indexed by `ValueId`). The planner uses this to size
    /// arena slots ahead of time.
    pub(crate) fn value_shapes(&self, inputs: &[Shape]) -> Result<Vec<Option<Shape>>, PtqError> {
        if inputs.len() != self.inputs.len() {
            return Err(PtqError::InputArity {
                expected: self.inputs.len(),
                got: inputs.len(),
            });
        }
        self.validate_structure()?;
        let mut shapes: Vec<Option<Shape>> = vec![None; self.n_values];
        for (&id, s) in self.inputs.iter().zip(inputs) {
            shapes[id] = Some(s.clone());
        }
        for (&id, t) in &self.params {
            shapes[id] = Some(t.shape().to_vec());
        }
        for node in &self.nodes {
            let out = self.infer_node_shape(node, &shapes)?;
            shapes[node.output] = Some(out);
        }
        Ok(shapes)
    }

    /// Shape-infer one node. `shapes` must already hold the shapes of the
    /// node's inputs and of all bound parameters (guaranteed after
    /// [`Graph::validate_structure`]).
    pub(crate) fn infer_node_shape(
        &self,
        node: &Node,
        shapes: &[Option<Shape>],
    ) -> Result<Shape, PtqError> {
        let shape_err = |e: shape::ShapeError| PtqError::ShapeMismatch {
            node: node.name.clone(),
            detail: e.0,
        };
        let arity = |n: usize| -> Result<(), PtqError> {
            if node.inputs.len() != n {
                return Err(PtqError::ShapeMismatch {
                    node: node.name.clone(),
                    detail: format!(
                        "operator takes {n} activation inputs, node lists {}",
                        node.inputs.len()
                    ),
                });
            }
            Ok(())
        };
        let ins: Vec<&[usize]> = node
            .inputs
            .iter()
            .map(|&i| shapes[i].as_deref().unwrap_or(&[]))
            .collect();
        let pshape =
            |id: ValueId| -> &[usize] { shapes.get(id).and_then(|s| s.as_deref()).unwrap_or(&[]) };

        let out = match &node.op {
            Op::Conv2d {
                weight,
                bias,
                params,
                depthwise,
            } => {
                arity(1)?;
                shape::conv2d_shape(
                    ins[0],
                    pshape(*weight),
                    bias.map(pshape),
                    *params,
                    *depthwise,
                )
                .map_err(shape_err)?
            }
            Op::Linear { weight, bias } => {
                arity(1)?;
                shape::linear_shape(ins[0], pshape(*weight), bias.map(pshape)).map_err(shape_err)?
            }
            Op::MatMul => {
                arity(2)?;
                shape::matmul_shape(ins[0], ins[1]).map_err(shape_err)?
            }
            Op::BatchMatMul => {
                arity(2)?;
                shape::batch_matmul_shape(ins[0], ins[1]).map_err(shape_err)?
            }
            Op::Embedding { table } => {
                arity(1)?;
                let n_ids = ins[0].iter().product();
                shape::embedding_shape(pshape(*table), n_ids).map_err(shape_err)?
            }
            Op::BatchNorm {
                gamma,
                beta,
                mean,
                var,
                ..
            } => {
                arity(1)?;
                shape::batchnorm2d_shape(
                    ins[0],
                    pshape(*gamma),
                    pshape(*beta),
                    pshape(*mean),
                    pshape(*var),
                )
                .map_err(shape_err)?
            }
            Op::LayerNorm { gamma, beta, .. } => {
                arity(1)?;
                shape::layernorm_shape(ins[0], pshape(*gamma), pshape(*beta)).map_err(shape_err)?
            }
            Op::Add | Op::Mul => {
                arity(2)?;
                shape::broadcast_shape(ins[0], ins[1]).map_err(shape_err)?
            }
            Op::AddParam { param } => {
                arity(1)?;
                shape::broadcast_shape(ins[0], pshape(*param)).map_err(shape_err)?
            }
            Op::Relu | Op::Gelu | Op::Silu | Op::Sigmoid | Op::Tanh | Op::Scale(_) => {
                arity(1)?;
                ins[0].to_vec()
            }
            Op::Softmax => {
                arity(1)?;
                shape::softmax_shape(ins[0]).map_err(shape_err)?
            }
            Op::MaxPool { k } | Op::AvgPool { k } => {
                arity(1)?;
                shape::pool2d_shape(ins[0], *k).map_err(shape_err)?
            }
            Op::GlobalAvgPool => {
                arity(1)?;
                shape::global_avg_pool2d_shape(ins[0]).map_err(shape_err)?
            }
            Op::MeanRows => {
                arity(1)?;
                shape::mean_rows_shape(ins[0]).map_err(shape_err)?
            }
            Op::Reshape(target) => {
                arity(1)?;
                shape::reshape_shape(ins[0], target).map_err(shape_err)?
            }
            Op::Permute(perm) => {
                arity(1)?;
                shape::permute_shape(ins[0], perm).map_err(shape_err)?
            }
            Op::Upsample2x => {
                arity(1)?;
                shape::upsample2x_shape(ins[0]).map_err(shape_err)?
            }
            Op::CausalMask => {
                arity(1)?;
                shape::causal_mask_shape(ins[0]).map_err(shape_err)?
            }
        };
        Ok(out)
    }
}
