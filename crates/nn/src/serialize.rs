//! Binary graph serialization for the on-disk artifact format.
//!
//! [`encode_graph`] flattens a [`Graph`] — nodes, wiring, and bound f32
//! parameters — into one little-endian chunk payload; [`decode_graph`]
//! parses it back. The encoding is **canonical**: parameters are written
//! in ascending [`ValueId`] order and floats as IEEE-754 bit patterns, so
//! encoding the same graph twice yields the same bytes (the artifact
//! byte-determinism tests rely on this) and a decode→encode round trip is
//! byte-identical.
//!
//! Operator discriminants are the `Op` variants' declaration order
//! (`Conv2d` = 0 … `CausalMask` = 24); adding a variant appends a new
//! discriminant and is a container-version bump. The decoder validates
//! the wire format only (bounds, counts, discriminants); callers run
//! [`Graph::validate_structure`] on the result, exactly as for a built
//! graph.

use crate::graph::{Graph, Node, Op, ValueId};
use ptq_artifact::{ArtifactError, ByteReader, ByteWriter};
use ptq_tensor::ops::Conv2dParams;
use ptq_tensor::Tensor;
use std::collections::HashMap;

fn put_opt_value(w: &mut ByteWriter, v: &Option<ValueId>) {
    match v {
        Some(id) => {
            w.put_u8(1);
            w.put_usize(*id);
        }
        None => w.put_u8(0),
    }
}

fn get_opt_value(r: &mut ByteReader<'_>, what: &str) -> Result<Option<ValueId>, ArtifactError> {
    match r.get_u8(what)? {
        0 => Ok(None),
        1 => Ok(Some(r.get_usize(what)?)),
        other => Err(ArtifactError::Decode {
            detail: format!("{what}: bad option flag {other}"),
        }),
    }
}

fn put_op(w: &mut ByteWriter, op: &Op) {
    match op {
        Op::Conv2d {
            weight,
            bias,
            params,
            depthwise,
        } => {
            w.put_u8(0);
            w.put_usize(*weight);
            put_opt_value(w, bias);
            w.put_usize(params.stride);
            w.put_usize(params.padding);
            w.put_u8(u8::from(*depthwise));
        }
        Op::Linear { weight, bias } => {
            w.put_u8(1);
            w.put_usize(*weight);
            put_opt_value(w, bias);
        }
        Op::MatMul => w.put_u8(2),
        Op::BatchMatMul => w.put_u8(3),
        Op::Embedding { table } => {
            w.put_u8(4);
            w.put_usize(*table);
        }
        Op::BatchNorm {
            gamma,
            beta,
            mean,
            var,
            eps,
        } => {
            w.put_u8(5);
            w.put_usize(*gamma);
            w.put_usize(*beta);
            w.put_usize(*mean);
            w.put_usize(*var);
            w.put_f32(*eps);
        }
        Op::LayerNorm { gamma, beta, eps } => {
            w.put_u8(6);
            w.put_usize(*gamma);
            w.put_usize(*beta);
            w.put_f32(*eps);
        }
        Op::Add => w.put_u8(7),
        Op::Mul => w.put_u8(8),
        Op::AddParam { param } => {
            w.put_u8(9);
            w.put_usize(*param);
        }
        Op::Relu => w.put_u8(10),
        Op::Gelu => w.put_u8(11),
        Op::Silu => w.put_u8(12),
        Op::Sigmoid => w.put_u8(13),
        Op::Tanh => w.put_u8(14),
        Op::Softmax => w.put_u8(15),
        Op::MaxPool { k } => {
            w.put_u8(16);
            w.put_usize(*k);
        }
        Op::AvgPool { k } => {
            w.put_u8(17);
            w.put_usize(*k);
        }
        Op::GlobalAvgPool => w.put_u8(18),
        Op::MeanRows => w.put_u8(19),
        Op::Reshape(shape) => {
            w.put_u8(20);
            w.put_usize_slice(shape);
        }
        Op::Permute(perm) => {
            w.put_u8(21);
            w.put_usize_slice(perm);
        }
        Op::Scale(s) => {
            w.put_u8(22);
            w.put_f32(*s);
        }
        Op::Upsample2x => w.put_u8(23),
        Op::CausalMask => w.put_u8(24),
    }
}

fn get_op(r: &mut ByteReader<'_>) -> Result<Op, ArtifactError> {
    let disc = r.get_u8("op discriminant")?;
    Ok(match disc {
        0 => Op::Conv2d {
            weight: r.get_usize("conv2d weight")?,
            bias: get_opt_value(r, "conv2d bias")?,
            params: Conv2dParams {
                stride: r.get_usize("conv2d stride")?,
                padding: r.get_usize("conv2d padding")?,
            },
            depthwise: match r.get_u8("conv2d depthwise")? {
                0 => false,
                1 => true,
                other => {
                    return Err(ArtifactError::Decode {
                        detail: format!("conv2d depthwise: bad bool {other}"),
                    })
                }
            },
        },
        1 => Op::Linear {
            weight: r.get_usize("linear weight")?,
            bias: get_opt_value(r, "linear bias")?,
        },
        2 => Op::MatMul,
        3 => Op::BatchMatMul,
        4 => Op::Embedding {
            table: r.get_usize("embedding table")?,
        },
        5 => Op::BatchNorm {
            gamma: r.get_usize("batchnorm gamma")?,
            beta: r.get_usize("batchnorm beta")?,
            mean: r.get_usize("batchnorm mean")?,
            var: r.get_usize("batchnorm var")?,
            eps: r.get_f32("batchnorm eps")?,
        },
        6 => Op::LayerNorm {
            gamma: r.get_usize("layernorm gamma")?,
            beta: r.get_usize("layernorm beta")?,
            eps: r.get_f32("layernorm eps")?,
        },
        7 => Op::Add,
        8 => Op::Mul,
        9 => Op::AddParam {
            param: r.get_usize("addparam param")?,
        },
        10 => Op::Relu,
        11 => Op::Gelu,
        12 => Op::Silu,
        13 => Op::Sigmoid,
        14 => Op::Tanh,
        15 => Op::Softmax,
        16 => Op::MaxPool {
            k: r.get_usize("maxpool k")?,
        },
        17 => Op::AvgPool {
            k: r.get_usize("avgpool k")?,
        },
        18 => Op::GlobalAvgPool,
        19 => Op::MeanRows,
        20 => Op::Reshape(r.get_usize_vec("reshape shape")?),
        21 => Op::Permute(r.get_usize_vec("permute perm")?),
        22 => Op::Scale(r.get_f32("scale factor")?),
        23 => Op::Upsample2x,
        24 => Op::CausalMask,
        other => {
            return Err(ArtifactError::Decode {
                detail: format!("unknown op discriminant {other}"),
            })
        }
    })
}

/// Serialize a graph (nodes, wiring, bound f32 parameters) into one
/// canonical little-endian payload.
pub fn encode_graph(g: &Graph) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_usize(g.nodes().len());
    for node in g.nodes() {
        w.put_usize(node.id);
        w.put_str(&node.name);
        put_op(&mut w, &node.op);
        w.put_usize_slice(&node.inputs);
        w.put_usize(node.output);
    }
    w.put_usize_slice(g.input_ids());
    w.put_usize_slice(g.output_ids());
    w.put_usize(g.n_values());
    let mut params: Vec<(ValueId, &Tensor)> = g.params().collect();
    params.sort_by_key(|(id, _)| *id);
    w.put_usize(params.len());
    for (id, t) in params {
        w.put_usize(id);
        w.put_usize_slice(t.shape());
        w.put_f32_slice(t.data());
    }
    w.finish()
}

/// Parse a payload written by [`encode_graph`].
///
/// Validates the wire format (bounds, counts, discriminants, tensor
/// shape/length agreement); run [`Graph::validate_structure`] on the
/// result for the semantic checks a freshly built graph gets.
///
/// # Errors
///
/// [`ArtifactError::Truncated`] / [`ArtifactError::Decode`] on any
/// malformed payload — never a panic.
pub fn decode_graph(payload: &[u8]) -> Result<Graph, ArtifactError> {
    let mut r = ByteReader::new(payload);
    let n_nodes = r.get_count("node count")?;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let id = r.get_usize("node id")?;
        let name = r.get_str("node name")?;
        let op = get_op(&mut r)?;
        let inputs = r.get_usize_vec("node inputs")?;
        let output = r.get_usize("node output")?;
        nodes.push(Node {
            id,
            op,
            inputs,
            output,
            name,
        });
    }
    let inputs = r.get_usize_vec("graph inputs")?;
    let outputs = r.get_usize_vec("graph outputs")?;
    let n_values = r.get_usize("n_values")?;
    let n_params = r.get_count("param count")?;
    let mut params = HashMap::with_capacity(n_params);
    for _ in 0..n_params {
        let id = r.get_usize("param id")?;
        let shape = r.get_usize_vec("param shape")?;
        let data = r.get_f32_vec("param data")?;
        let product = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| ArtifactError::Decode {
                detail: format!("param {id}: shape {shape:?} overflows"),
            })?;
        if product != data.len() {
            return Err(ArtifactError::Decode {
                detail: format!(
                    "param {id}: shape {shape:?} implies {product} elements, got {}",
                    data.len()
                ),
            });
        }
        if params.insert(id, Tensor::from_vec(data, &shape)).is_some() {
            return Err(ArtifactError::Decode {
                detail: format!("param {id} appears twice"),
            });
        }
    }
    // Node ids are defined as node-list indices; a payload that violates
    // that would desynchronize every per-node map keyed by NodeId.
    for (i, node) in nodes.iter().enumerate() {
        if node.id != i {
            return Err(ArtifactError::Decode {
                detail: format!("node {i} carries id {}", node.id),
            });
        }
    }
    r.expect_end()?;
    Ok(Graph::from_parts(nodes, params, inputs, outputs, n_values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use ptq_tensor::rng::TensorRng;

    /// A graph exercising every Op variant once.
    fn kitchen_sink() -> Graph {
        let mut rng = TensorRng::seed(77);
        let mut b = GraphBuilder::new();
        let x = b.input();
        let ids = b.input();
        // Conv stack.
        let w = b.param(rng.normal(&[2, 3, 3, 3], 0.0, 0.1));
        let bias = b.param(rng.normal(&[2], 0.0, 0.1));
        let c = b.conv2d(
            x,
            w,
            Some(bias),
            Conv2dParams {
                stride: 1,
                padding: 1,
            },
        );
        let dw = b.param(rng.normal(&[2, 1, 3, 3], 0.0, 0.1));
        let d = b.depthwise_conv2d(
            c,
            dw,
            None,
            Conv2dParams {
                stride: 1,
                padding: 1,
            },
        );
        let g = b.param(rng.normal(&[2], 1.0, 0.01));
        let bt = b.param(rng.normal(&[2], 0.0, 0.01));
        let mn = b.param(rng.normal(&[2], 0.0, 0.01));
        let vr = b.param(rng.normal(&[2], 1.0, 0.01));
        let bn = b.batchnorm(d, g, bt, mn, vr, 1e-5);
        let r = b.relu(bn);
        let mp = b.max_pool(r, 2);
        let ap = b.avg_pool(mp, 2);
        let up = b.upsample2x(ap);
        let gap = b.global_avg_pool(up);
        // Transformer-ish stack off the embedding.
        let table = b.param(rng.normal(&[7, 4], 0.0, 1.0));
        let e = b.embedding(ids, table);
        let pos = b.param(rng.normal(&[1, 4], 0.0, 0.1));
        let ep = b.add_param(e, pos);
        let lg = b.param(rng.normal(&[4], 1.0, 0.01));
        let lb = b.param(rng.normal(&[4], 0.0, 0.01));
        let ln = b.layernorm(ep, lg, lb, 1e-5);
        let lw = b.param(rng.normal(&[4, 4], 0.0, 0.3));
        let lin = b.linear(ln, lw, None);
        let gl = b.gelu(lin);
        let si = b.silu(gl);
        let sg = b.sigmoid(si);
        let th = b.tanh(sg);
        let sc = b.scale(th, 0.5);
        let mm = b.matmul(sc, ln);
        let re = b.reshape(mm, &[1, 3, 4]);
        let pe = b.permute(re, &[0, 2, 1]);
        let bm = b.batch_matmul(pe, re);
        let cm = b.causal_mask(bm);
        let sm = b.softmax(cm);
        let ad = b.add(sm, sm);
        let ml = b.mul(ad, sm);
        let r2 = b.reshape(ml, &[4, 4]);
        let mr = b.mean_rows(r2);
        b.build(vec![gap, mr]).unwrap()
    }

    #[test]
    fn roundtrip_preserves_the_graph_exactly() {
        let g = kitchen_sink();
        let bytes = encode_graph(&g);
        let back = decode_graph(&bytes).unwrap();
        assert_eq!(g, back);
        back.validate_structure().unwrap();
        // Canonical encoding: re-encoding the decoded graph is
        // byte-identical (params are sorted, floats are bit patterns).
        assert_eq!(bytes, encode_graph(&back));
    }

    #[test]
    fn roundtrip_is_bit_exact_on_params() {
        let g = kitchen_sink();
        let back = decode_graph(&encode_graph(&g)).unwrap();
        for (id, t) in g.params() {
            let bt = back.param(id).unwrap();
            assert_eq!(t.shape(), bt.shape());
            for (a, b) in t.data().iter().zip(bt.data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn truncation_and_corruption_are_typed() {
        let g = kitchen_sink();
        let bytes = encode_graph(&g);
        for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_graph(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // An unknown op discriminant is a decode error.
        let mut w = ByteWriter::new();
        w.put_usize(1);
        w.put_usize(0);
        w.put_str("bad");
        w.put_u8(200); // no such op
        assert!(matches!(
            decode_graph(&w.finish()),
            Err(ArtifactError::Decode { .. })
        ));
    }

    #[test]
    fn param_shape_length_disagreement_is_rejected() {
        let g = kitchen_sink();
        let mut bytes = encode_graph(&g);
        // Append nothing; instead corrupt by re-encoding with a bad param:
        // craft a minimal payload with one param of mismatched size.
        let mut w = ByteWriter::new();
        w.put_usize(0); // no nodes
        w.put_usize_slice(&[]); // inputs
        w.put_usize_slice(&[]); // outputs
        w.put_usize(0); // n_values
        w.put_usize(1); // one param
        w.put_usize(3); // id
        w.put_usize_slice(&[2, 2]); // shape says 4
        w.put_f32_slice(&[1.0, 2.0, 3.0]); // data says 3
        assert!(matches!(
            decode_graph(&w.finish()),
            Err(ArtifactError::Decode { .. })
        ));
        // And trailing garbage after a valid graph is rejected.
        bytes.push(0);
        assert!(decode_graph(&bytes).is_err());
    }
}
