//! Exhaustive error-path suite for the validation pass: every class of
//! malformed graph must surface as a typed `PtqError` from `run`,
//! never as a panic.

use ptq_nn::{Graph, GraphBuilder, Node, Op, PtqError};
use ptq_tensor::ops::Conv2dParams;
use ptq_tensor::Tensor;
use std::collections::HashMap;

/// A minimal single-linear graph: input [m,4] -> Linear(10x4).
fn linear_graph() -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input();
    let w = b.param(Tensor::ones(&[10, 4]));
    let y = b.linear(x, w, None);
    b.finish(vec![y])
}

/// Assert `run` (not just `validate`) fails — and, being a `Result`,
/// by construction does not panic.
fn expect_err(g: &Graph, inputs: &[Tensor]) -> PtqError {
    g.infer(inputs).expect_err("malformed case must fail")
}

#[test]
fn wrong_input_arity() {
    let g = linear_graph();
    let e = expect_err(&g, &[]);
    assert_eq!(
        e,
        PtqError::InputArity {
            expected: 1,
            got: 0
        }
    );
    assert_eq!(e.to_string(), "graph expects 1 inputs, got 0");
    let too_many = [Tensor::ones(&[1, 4]), Tensor::ones(&[1, 4])];
    assert!(matches!(
        expect_err(&g, &too_many),
        PtqError::InputArity {
            expected: 1,
            got: 2
        }
    ));
}

#[test]
fn unbound_parameter() {
    // Hand-build a Linear node whose weight id has no bound tensor.
    let nodes = vec![Node {
        id: 0,
        op: Op::Linear {
            weight: 1,
            bias: None,
        },
        inputs: vec![0],
        output: 2,
        name: "linear_0".into(),
    }];
    let g = Graph::from_parts(nodes, HashMap::new(), vec![0], vec![2], 3);
    let e = expect_err(&g, &[Tensor::ones(&[1, 4])]);
    assert!(matches!(e, PtqError::UnboundParam { value: 1, .. }), "{e}");
}

#[test]
fn use_before_def() {
    // Node 0 reads value 5, which nothing produces.
    let mut params = HashMap::new();
    params.insert(1usize, Tensor::ones(&[10, 4]));
    let nodes = vec![Node {
        id: 0,
        op: Op::Linear {
            weight: 1,
            bias: None,
        },
        inputs: vec![5],
        output: 2,
        name: "linear_0".into(),
    }];
    let g = Graph::from_parts(nodes, params, vec![0], vec![2], 6);
    let e = expect_err(&g, &[Tensor::ones(&[1, 4])]);
    assert!(matches!(e, PtqError::UseBeforeDef { value: 5, .. }), "{e}");
}

#[test]
fn unproduced_output() {
    let mut params = HashMap::new();
    params.insert(1usize, Tensor::ones(&[10, 4]));
    let nodes = vec![Node {
        id: 0,
        op: Op::Linear {
            weight: 1,
            bias: None,
        },
        inputs: vec![0],
        output: 2,
        name: "linear_0".into(),
    }];
    // Output 3 is never produced by any node.
    let g = Graph::from_parts(nodes, params, vec![0], vec![3], 4);
    let e = expect_err(&g, &[Tensor::ones(&[1, 4])]);
    assert!(matches!(e, PtqError::UnproducedOutput { value: 3 }), "{e}");
}

#[test]
fn empty_graph() {
    let g = Graph::from_parts(vec![], HashMap::new(), vec![], vec![], 0);
    assert_eq!(expect_err(&g, &[]), PtqError::EmptyGraph);
}

#[test]
fn builder_build_catches_unbound_param() {
    let mut b = GraphBuilder::new();
    let x = b.input();
    // `999` is a dangling weight id the builder cannot know about.
    let y = b.linear(x, 999, None);
    // (builder only checks *activation* inputs, so construction succeeds)
    let r = b.build(vec![y]);
    assert!(
        matches!(r, Err(PtqError::UnboundParam { value: 999, .. })),
        "{r:?}"
    );
}

#[test]
fn builder_build_ok_on_healthy_graph() {
    let mut b = GraphBuilder::new();
    let x = b.input();
    let w = b.param(Tensor::ones(&[2, 2]));
    let y = b.linear(x, w, None);
    let g = b.build(vec![y]).unwrap();
    assert_eq!(
        g.infer(&[Tensor::ones(&[1, 2])]).unwrap()[0].shape(),
        &[1, 2]
    );
}

// ---- shape/rank mismatch per operator class ----

fn shape_err(g: &Graph, inputs: &[Tensor]) {
    let e = expect_err(g, inputs);
    assert!(matches!(e, PtqError::ShapeMismatch { .. }), "{e}");
}

#[test]
fn linear_shape_mismatches() {
    let g = linear_graph();
    // in_features 5 vs weight's 4.
    shape_err(&g, &[Tensor::ones(&[2, 5])]);
    // 3-D input to a 2-D op.
    shape_err(&g, &[Tensor::ones(&[2, 4, 1])]);
    // Bias length disagrees with out_features.
    let mut b = GraphBuilder::new();
    let x = b.input();
    let w = b.param(Tensor::ones(&[10, 4]));
    let bias = b.param(Tensor::ones(&[9]));
    let y = b.linear(x, w, Some(bias));
    let g = b.finish(vec![y]);
    shape_err(&g, &[Tensor::ones(&[2, 4])]);
}

#[test]
fn conv_shape_mismatches() {
    let mut b = GraphBuilder::new();
    let x = b.input();
    let w = b.param(Tensor::ones(&[4, 3, 3, 3]));
    let y = b.conv2d(x, w, None, Conv2dParams::same(3));
    let g = b.finish(vec![y]);
    // Channel mismatch (2 vs weight's 3) and non-NCHW rank.
    shape_err(&g, &[Tensor::ones(&[1, 2, 8, 8])]);
    shape_err(&g, &[Tensor::ones(&[3, 8, 8])]);
    // Kernel larger than the (unpadded) input.
    let mut b = GraphBuilder::new();
    let x = b.input();
    let w = b.param(Tensor::ones(&[1, 1, 5, 5]));
    let y = b.conv2d(x, w, None, Conv2dParams::default());
    let g = b.finish(vec![y]);
    shape_err(&g, &[Tensor::ones(&[1, 1, 2, 2])]);
    // Depthwise weight must be [C,1,Kh,Kw] with C == input channels.
    let mut b = GraphBuilder::new();
    let x = b.input();
    let w = b.param(Tensor::ones(&[3, 1, 3, 3]));
    let y = b.depthwise_conv2d(x, w, None, Conv2dParams::same(3));
    let g = b.finish(vec![y]);
    shape_err(&g, &[Tensor::ones(&[1, 4, 8, 8])]);
}

#[test]
fn matmul_shape_mismatches() {
    let mut b = GraphBuilder::new();
    let p = b.input();
    let q = b.input();
    let y = b.matmul(p, q);
    let g = b.finish(vec![y]);
    // Inner-dimension disagreement and wrong rank.
    shape_err(&g, &[Tensor::ones(&[2, 3]), Tensor::ones(&[4, 2])]);
    shape_err(&g, &[Tensor::ones(&[2, 3, 1]), Tensor::ones(&[3, 4])]);

    let mut b = GraphBuilder::new();
    let p = b.input();
    let q = b.input();
    let y = b.batch_matmul(p, q);
    let g = b.finish(vec![y]);
    // Batch-dim disagreement.
    shape_err(&g, &[Tensor::ones(&[2, 4, 3]), Tensor::ones(&[3, 3, 5])]);
    // Inner-dim disagreement.
    shape_err(&g, &[Tensor::ones(&[2, 4, 3]), Tensor::ones(&[2, 4, 5])]);
}

#[test]
fn norm_shape_mismatches() {
    // BatchNorm: channel-count disagreement, then non-NCHW input.
    let mut b = GraphBuilder::new();
    let x = b.input();
    let gamma = b.param(Tensor::ones(&[3]));
    let beta = b.param(Tensor::zeros(&[3]));
    let mean = b.param(Tensor::zeros(&[3]));
    let var = b.param(Tensor::ones(&[3]));
    let y = b.batchnorm(x, gamma, beta, mean, var, 1e-5);
    let g = b.finish(vec![y]);
    shape_err(&g, &[Tensor::ones(&[1, 4, 2, 2])]);
    shape_err(&g, &[Tensor::ones(&[3, 2, 2])]);

    // LayerNorm: affine length vs last dim.
    let mut b = GraphBuilder::new();
    let x = b.input();
    let gamma = b.param(Tensor::ones(&[6]));
    let beta = b.param(Tensor::zeros(&[6]));
    let y = b.layernorm(x, gamma, beta, 1e-5);
    let g = b.finish(vec![y]);
    shape_err(&g, &[Tensor::ones(&[2, 5])]);
}

#[test]
fn elementwise_broadcast_mismatches() {
    let mut b = GraphBuilder::new();
    let p = b.input();
    let q = b.input();
    let y = b.add(p, q);
    let g = b.finish(vec![y]);
    shape_err(&g, &[Tensor::ones(&[2, 3]), Tensor::ones(&[2])]);

    let mut b = GraphBuilder::new();
    let x = b.input();
    let c = b.param(Tensor::ones(&[7]));
    let y = b.add_param(x, c);
    let g = b.finish(vec![y]);
    shape_err(&g, &[Tensor::ones(&[2, 3])]);
}

#[test]
fn pool_and_shape_op_mismatches() {
    let mut b = GraphBuilder::new();
    let x = b.input();
    let y = b.max_pool(x, 4);
    let g = b.finish(vec![y]);
    // Window larger than the spatial extent; wrong rank.
    shape_err(&g, &[Tensor::ones(&[1, 1, 2, 2])]);
    shape_err(&g, &[Tensor::ones(&[1, 2, 2])]);

    let mut b = GraphBuilder::new();
    let x = b.input();
    let y = b.reshape(x, &[5, 5]);
    let g = b.finish(vec![y]);
    shape_err(&g, &[Tensor::ones(&[2, 3])]);

    let mut b = GraphBuilder::new();
    let x = b.input();
    let y = b.permute(x, &[0, 0, 1]);
    let g = b.finish(vec![y]);
    shape_err(&g, &[Tensor::ones(&[2, 3, 4])]);

    let mut b = GraphBuilder::new();
    let x = b.input();
    let y = b.causal_mask(x);
    let g = b.finish(vec![y]);
    // More query rows than key positions cannot be bottom-aligned.
    shape_err(&g, &[Tensor::ones(&[2, 5, 4])]);
    shape_err(&g, &[Tensor::ones(&[4, 4])]);

    let mut b = GraphBuilder::new();
    let x = b.input();
    let y = b.mean_rows(x);
    let g = b.finish(vec![y]);
    shape_err(&g, &[Tensor::ones(&[2, 3, 4])]);

    let mut b = GraphBuilder::new();
    let x = b.input();
    let y = b.global_avg_pool(x);
    let g = b.finish(vec![y]);
    shape_err(&g, &[Tensor::ones(&[2, 3])]);

    let mut b = GraphBuilder::new();
    let x = b.input();
    let y = b.upsample2x(x);
    let g = b.finish(vec![y]);
    shape_err(&g, &[Tensor::ones(&[2, 3, 4])]);
}

// ---- data-dependent contracts: embedding ids ----

fn embedding_graph() -> Graph {
    let mut b = GraphBuilder::new();
    let ids = b.input();
    let table = b.param(Tensor::from_vec(vec![0., 0., 1., 1., 2., 2.], &[3, 2]));
    let e = b.embedding(ids, table);
    b.finish(vec![e])
}

#[test]
fn embedding_rejects_bad_ids() {
    let g = embedding_graph();
    for bad in [-1.0f32, 0.5, 3.0, f32::NAN, f32::INFINITY] {
        let e = g
            .infer(&[Tensor::from_slice(&[bad])])
            .expect_err("bad id must fail");
        assert!(matches!(e, PtqError::InvalidInput { .. }), "id {bad}: {e}");
    }
    // Valid boundary id still works.
    let ok = g.infer(&[Tensor::from_slice(&[2.0])]).unwrap();
    assert_eq!(ok[0].data(), &[2.0, 2.0]);
}

// ---- validate() reports output shapes ----

#[test]
fn validate_infers_output_shapes() {
    let mut b = GraphBuilder::new();
    let x = b.input();
    let w = b.param(Tensor::ones(&[4, 3, 3, 3]));
    let c = b.conv2d(x, w, None, Conv2dParams::same(3));
    let r = b.relu(c);
    let p = b.max_pool(r, 2);
    let g = b.finish(vec![p]);
    let shapes = g.validate(&[vec![2, 3, 8, 8]]).unwrap();
    assert_eq!(shapes, vec![vec![2, 4, 4, 4]]);
}

// ---- causal mask semantics ----

#[test]
fn causal_mask_blocks_all_mass_even_at_huge_scale() {
    // With the old -1e9 sentinel, scores of magnitude ~1e9 leak mass
    // through the mask after softmax; a true -inf cannot.
    let mut b = GraphBuilder::new();
    let x = b.input();
    let m = b.causal_mask(x);
    let y = b.softmax(m);
    let g = b.finish(vec![y]);
    let scores = Tensor::from_vec(
        vec![1e9, 2e9, 3e9, 4e9, 5e9, 6e9, 7e9, 8e9, 9e9],
        &[1, 3, 3],
    );
    let p = &g.infer(&[scores]).unwrap()[0];
    // Strictly-upper-triangular entries carry exactly zero probability.
    assert_eq!(p.at(&[0, 0, 1]), 0.0);
    assert_eq!(p.at(&[0, 0, 2]), 0.0);
    assert_eq!(p.at(&[0, 1, 2]), 0.0);
    // Every row still sums to 1 and stays finite.
    for i in 0..3 {
        let s: f32 = (0..3).map(|j| p.at(&[0, i, j])).sum();
        assert!((s - 1.0).abs() < 1e-6, "row {i} sums to {s}");
    }
    assert!(p.data().iter().all(|v| v.is_finite()));
}
