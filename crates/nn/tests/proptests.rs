//! Property-based tests for the graph IR and interpreter.

use proptest::prelude::*;
use ptq_nn::{ExecHook, GraphBuilder, Node, NoopHook, UnwrapOk};
use ptq_tensor::{Tensor, TensorRng};

/// Build a random MLP graph from a shape spec: layer widths + activation
/// choices.
fn mlp(widths: &[usize], acts: &[u8], seed: u64) -> ptq_nn::Graph {
    let mut rng = TensorRng::seed(seed);
    let mut b = GraphBuilder::new();
    let x = b.input();
    let mut cur = x;
    for i in 1..widths.len() {
        let w = b.param(rng.kaiming(&[widths[i], widths[i - 1]]));
        cur = b.linear(cur, w, None);
        match acts[(i - 1) % acts.len()] % 4 {
            0 => cur = b.relu(cur),
            1 => cur = b.gelu(cur),
            2 => cur = b.tanh(cur),
            _ => {}
        }
    }
    b.finish(vec![cur])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The interpreter is deterministic and shape-correct for arbitrary
    /// MLPs.
    #[test]
    fn mlp_inference_deterministic(
        widths in proptest::collection::vec(1usize..12, 2..5),
        acts in proptest::collection::vec(0u8..4, 1..4),
        seed in 0u64..1000,
        rows in 1usize..4,
    ) {
        let g = mlp(&widths, &acts, seed);
        let x = TensorRng::seed(seed ^ 1).normal(&[rows, widths[0]], 0.0, 1.0);
        let y1 = g.infer(std::slice::from_ref(&x)).unwrap_ok();
        let y2 = g.infer(&[x]).unwrap_ok();
        prop_assert_eq!(&y1, &y2);
        prop_assert_eq!(y1[0].shape(), &[rows, *widths.last().expect("nonempty")]);
        prop_assert!(y1[0].data().iter().all(|v| v.is_finite()));
    }

    /// Hooks observe every node exactly once per run, in topological order.
    #[test]
    fn hooks_fire_once_per_node_in_order(
        widths in proptest::collection::vec(1usize..10, 2..6),
        seed in 0u64..1000,
    ) {
        struct Order(Vec<usize>);
        impl ExecHook for Order {
            fn before_node(&mut self, node: &Node, _i: &mut [Tensor]) {
                self.0.push(node.id);
            }
        }
        let g = mlp(&widths, &[0], seed);
        let mut h = Order(Vec::new());
        let x = TensorRng::seed(seed).normal(&[1, widths[0]], 0.0, 1.0);
        g.run(&[x], &mut h).unwrap_ok();
        prop_assert_eq!(h.0.len(), g.nodes().len());
        for (i, &id) in h.0.iter().enumerate() {
            prop_assert_eq!(id, i);
        }
    }

    /// Weight substitution with the identity transformation leaves the
    /// output bit-identical.
    #[test]
    fn identity_weight_hook_is_noop(
        widths in proptest::collection::vec(1usize..10, 2..5),
        seed in 0u64..1000,
    ) {
        struct Identity;
        impl ExecHook for Identity {
            fn weight(&mut self, _n: &Node, _v: usize, w: &Tensor) -> Option<Tensor> {
                Some(w.clone())
            }
        }
        let g = mlp(&widths, &[3], seed);
        let x = TensorRng::seed(seed ^ 2).normal(&[2, widths[0]], 0.0, 1.0);
        let base = g.run(std::slice::from_ref(&x), &mut NoopHook).unwrap_ok();
        let subst = g.run(&[x], &mut Identity).unwrap_ok();
        prop_assert_eq!(base, subst);
    }

    /// Scaling the single linear layer's weight scales the output linearly.
    #[test]
    fn linear_graph_is_homogeneous(
        w_in in 1usize..8,
        w_out in 1usize..8,
        seed in 0u64..1000,
        k in 0.25f32..4.0,
    ) {
        struct Scale(f32);
        impl ExecHook for Scale {
            fn weight(&mut self, _n: &Node, _v: usize, w: &Tensor) -> Option<Tensor> {
                Some(w.scale(self.0))
            }
        }
        let mut rng = TensorRng::seed(seed);
        let mut b = GraphBuilder::new();
        let x = b.input();
        let w = b.param(rng.kaiming(&[w_out, w_in]));
        let y = b.linear(x, w, None);
        let g = b.finish(vec![y]);
        let input = TensorRng::seed(seed ^ 3).normal(&[1, w_in], 0.0, 1.0);
        let base = g.run(std::slice::from_ref(&input), &mut NoopHook).unwrap_ok();
        let scaled = g.run(&[input], &mut Scale(k)).unwrap_ok();
        for (a, b) in base[0].data().iter().zip(scaled[0].data()) {
            prop_assert!((a * k - b).abs() <= 1e-4 * (a.abs() * k + 1.0));
        }
    }

    /// Param counts are consistent with the builder's inputs.
    #[test]
    fn param_count_matches(
        widths in proptest::collection::vec(1usize..10, 2..6),
        seed in 0u64..1000,
    ) {
        let g = mlp(&widths, &[3], seed);
        let expected: usize = widths.windows(2).map(|w| w[0] * w[1]).sum();
        prop_assert_eq!(g.param_count(), expected);
    }

    /// Planned execution is bit-identical to the interpreter for
    /// arbitrary MLPs under a no-op hook.
    #[test]
    fn plan_matches_interpreter(
        widths in proptest::collection::vec(1usize..12, 2..6),
        acts in proptest::collection::vec(0u8..4, 1..4),
        seed in 0u64..1000,
        rows in 1usize..4,
    ) {
        let g = mlp(&widths, &acts, seed);
        let x = TensorRng::seed(seed ^ 5).normal(&[rows, widths[0]], 0.0, 1.0);
        let plan = g.plan(&[x.shape().to_vec()]).unwrap_ok();
        let interp = g.infer(std::slice::from_ref(&x)).unwrap_ok();
        // Run the plan twice so the second pass exercises warmed (reused)
        // arena buffers, not just fresh ones.
        let p1 = plan.run(&g, std::slice::from_ref(&x), &mut NoopHook).unwrap_ok();
        let p2 = plan.run(&g, &[x], &mut NoopHook).unwrap_ok();
        prop_assert_eq!(&interp, &p1);
        prop_assert_eq!(&interp, &p2);
    }

    /// Planned execution drives hooks identically to the interpreter:
    /// same node order, same (mutable) input views, same weight fetches.
    #[test]
    fn plan_drives_hooks_identically(
        widths in proptest::collection::vec(1usize..10, 2..5),
        seed in 0u64..1000,
        k in 0.25f32..4.0,
    ) {
        /// Scales weights via the owned protocol, perturbs inputs in
        /// `before_node`, and logs every callback.
        struct Mangler { k: f32, log: Vec<(usize, usize)> }
        impl ExecHook for Mangler {
            fn before_node(&mut self, node: &Node, inputs: &mut [Tensor]) {
                self.log.push((node.id, inputs.len()));
                for t in inputs {
                    t.map_inplace(|v| v + 0.125);
                }
            }
            fn weight(&mut self, _n: &Node, _v: usize, w: &Tensor) -> Option<Tensor> {
                Some(w.scale(self.k))
            }
        }
        let g = mlp(&widths, &[0, 1], seed);
        let x = TensorRng::seed(seed ^ 7).normal(&[2, widths[0]], 0.0, 1.0);
        let mut hi = Mangler { k, log: Vec::new() };
        let yi = g.run(std::slice::from_ref(&x), &mut hi).unwrap_ok();
        let plan = g.plan(&[x.shape().to_vec()]).unwrap_ok();
        let mut hp = Mangler { k, log: Vec::new() };
        let yp = plan.run(&g, &[x], &mut hp).unwrap_ok();
        prop_assert_eq!(yi, yp);
        prop_assert_eq!(hi.log, hp.log);
    }
}
