//! Tensor-level fake quantization with the paper's scaling rule.
//!
//! §3.1 of the paper: the scale factor is `s = float_max / max_T`, where
//! `float_max` is the largest representable value of the chosen FP8 format
//! and `max_T` is the calibrated absolute-maximum of the tensor. Values are
//! scaled *into* the format's range before encoding and scaled back after
//! decoding, so the full encoding space is used:
//!
//! ```text
//! q(x) = decode(encode(x * s)) / s
//! ```
//!
//! Per-channel variants apply an independent scale per output channel, the
//! recommendation the paper makes for weights across all networks.

use crate::codec::Fp8Codec;
use crate::format::Fp8Format;
use crate::int8::{Int8Codec, Int8Mode};
use crate::lut::Fp8Lut;
use serde::{Deserialize, Serialize};

/// Compute the paper's scale `s = float_max / max_T` for a tensor whose
/// calibrated absmax is `max_t`.
///
/// A degenerate (zero / non-finite) `max_t` yields a scale of 1.0 so that
/// all-zero tensors pass through unchanged.
pub fn fp8_scale(format: Fp8Format, max_t: f32) -> f32 {
    if max_t > 0.0 && max_t.is_finite() {
        format.max_value() / max_t
    } else {
        1.0
    }
}

/// Summary statistics of one fake-quantization pass; used by the MSE plots
/// (Figure 1, Figure 8) and by the MSE-sweep observer.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FakeQuantStats {
    /// Mean squared error between input and quantized output.
    pub mse: f64,
    /// Maximum absolute error.
    pub max_abs_err: f32,
    /// Number of elements that saturated at the format's max value.
    pub saturated: usize,
    /// Number of elements that flushed to zero.
    pub underflowed: usize,
}

/// Alias kept for readability at call sites that treat the stats as a
/// description of the quantized tensor rather than of the pass.
pub type QuantizedTensorStats = FakeQuantStats;

/// Fake-quantize `data` in place with a single (per-tensor) scale, returning
/// error statistics.
///
/// `scale` should come from [`fp8_scale`]; pass `1.0` for *direct*
/// quantization (the paper's E5M2 recipe, which needs no range calibration).
pub fn fake_quant_fp8(data: &mut [f32], codec: &Fp8Codec, scale: f32) -> FakeQuantStats {
    let max_v = codec.spec().max_value();
    // A value only loses information to saturation once it lies beyond the
    // half-ulp rounding window around the max code; `x * (max / absmax)` can
    // land epsilon above max_v from f32 rounding without being a real clip.
    let sat_threshold = max_v + 0.5 * codec.spec().ulp_at(max_v);
    let mut mse = 0.0f64;
    let mut max_err = 0.0f32;
    let mut saturated = 0usize;
    let mut underflowed = 0usize;
    for x in data.iter_mut() {
        let orig = *x;
        let scaled = orig * scale;
        let q = codec.quantize(scaled);
        if scaled.abs() > sat_threshold {
            saturated += 1;
        }
        if q == 0.0 && orig != 0.0 {
            underflowed += 1;
        }
        let deq = q / scale;
        let e = orig - deq;
        mse += (e as f64) * (e as f64);
        max_err = max_err.max(e.abs());
        *x = deq;
    }
    if !data.is_empty() {
        mse /= data.len() as f64;
    }
    FakeQuantStats {
        mse,
        max_abs_err: max_err,
        saturated,
        underflowed,
    }
}

/// Table-driven variant of [`fake_quant_fp8`]: same contract, same
/// bit-identical results and statistics, but each element is quantized by
/// the codec's cached [`Fp8Lut`] (a breakpoint search plus a table load)
/// instead of the scalar encode/decode round trip.
///
/// Codecs with non-default overflow/rounding policies have no LUT and fall
/// back to the scalar path transparently.
pub fn fake_quant_fp8_lut(data: &mut [f32], codec: &Fp8Codec, scale: f32) -> FakeQuantStats {
    let Some(lut) = Fp8Lut::for_codec(codec) else {
        return fake_quant_fp8(data, codec, scale);
    };
    let max_v = codec.spec().max_value();
    let sat_threshold = max_v + 0.5 * codec.spec().ulp_at(max_v);
    let mut mse = 0.0f64;
    let mut max_err = 0.0f32;
    let mut saturated = 0usize;
    let mut underflowed = 0usize;
    for x in data.iter_mut() {
        let orig = *x;
        let scaled = orig * scale;
        let q = lut.quantize(scaled);
        if scaled.abs() > sat_threshold {
            saturated += 1;
        }
        if q == 0.0 && orig != 0.0 {
            underflowed += 1;
        }
        let deq = q / scale;
        let e = orig - deq;
        mse += (e as f64) * (e as f64);
        max_err = max_err.max(e.abs());
        *x = deq;
    }
    if !data.is_empty() {
        mse /= data.len() as f64;
    }
    FakeQuantStats {
        mse,
        max_abs_err: max_err,
        saturated,
        underflowed,
    }
}

/// Fake-quantize a 2-D-viewed tensor `[channels, inner]` with one scale per
/// channel (paper §3.1: per-channel scaling for weights). `data.len()` must
/// equal `channels * inner`.
///
/// Scales are derived from each channel's absmax via [`fp8_scale`]; the
/// per-channel scales used are returned alongside the stats.
///
/// # Panics
///
/// Panics if `data.len() != channels * inner`.
pub fn fake_quant_fp8_per_channel(
    data: &mut [f32],
    codec: &Fp8Codec,
    channels: usize,
    inner: usize,
) -> (Vec<f32>, FakeQuantStats) {
    assert_eq!(data.len(), channels * inner, "shape mismatch");
    let format = spec_format_max(codec);
    let mut scales = Vec::with_capacity(channels);
    let mut total = FakeQuantStats::default();
    let mut sq = 0.0f64;
    for c in 0..channels {
        let chunk = &mut data[c * inner..(c + 1) * inner];
        // NaN-propagating absmax (PR 2 convention): a non-finite magnitude
        // wins the fold so the guard below falls back to unit scale.
        let absmax = chunk.iter().fold(0.0f32, |m, &x| {
            let a = x.abs();
            if a > m || !a.is_finite() {
                a
            } else {
                m
            }
        });
        let scale = if absmax > 0.0 && absmax.is_finite() {
            format / absmax
        } else {
            1.0
        };
        scales.push(scale);
        let st = fake_quant_fp8(chunk, codec, scale);
        sq += st.mse * inner as f64;
        total.max_abs_err = total.max_abs_err.max(st.max_abs_err);
        total.saturated += st.saturated;
        total.underflowed += st.underflowed;
    }
    if !data.is_empty() {
        total.mse = sq / data.len() as f64;
    }
    (scales, total)
}

/// Table-driven variant of [`fake_quant_fp8_per_channel`]: same contract,
/// bit-identical scales, outputs and statistics, using the codec's cached
/// [`Fp8Lut`] for the inner per-channel passes.
///
/// # Panics
///
/// Panics if `data.len() != channels * inner`.
pub fn fake_quant_fp8_per_channel_lut(
    data: &mut [f32],
    codec: &Fp8Codec,
    channels: usize,
    inner: usize,
) -> (Vec<f32>, FakeQuantStats) {
    assert_eq!(data.len(), channels * inner, "shape mismatch");
    let format = spec_format_max(codec);
    let mut scales = Vec::with_capacity(channels);
    let mut total = FakeQuantStats::default();
    let mut sq = 0.0f64;
    for c in 0..channels {
        let chunk = &mut data[c * inner..(c + 1) * inner];
        // NaN-propagating absmax, identical to the non-LUT variant above.
        let absmax = chunk.iter().fold(0.0f32, |m, &x| {
            let a = x.abs();
            if a > m || !a.is_finite() {
                a
            } else {
                m
            }
        });
        let scale = if absmax > 0.0 && absmax.is_finite() {
            format / absmax
        } else {
            1.0
        };
        scales.push(scale);
        let st = fake_quant_fp8_lut(chunk, codec, scale);
        sq += st.mse * inner as f64;
        total.max_abs_err = total.max_abs_err.max(st.max_abs_err);
        total.saturated += st.saturated;
        total.underflowed += st.underflowed;
    }
    if !data.is_empty() {
        total.mse = sq / data.len() as f64;
    }
    (scales, total)
}

/// Fake-quantize with a per-tensor INT8 codec, returning error statistics.
pub fn fake_quant_int8(data: &mut [f32], codec: &Int8Codec) -> FakeQuantStats {
    let mut mse = 0.0f64;
    let mut max_err = 0.0f32;
    let mut saturated = 0usize;
    for x in data.iter_mut() {
        let orig = *x;
        let q = codec.encode(orig);
        if q == 127 || q == -127 || (codec.mode() == Int8Mode::Asymmetric && (q == 0 || q == 255)) {
            // Conservative saturation count: boundary codes.
            if (orig - codec.decode(q)).abs() > codec.scale() * 0.5 {
                saturated += 1;
            }
        }
        let deq = codec.decode(q);
        let e = orig - deq;
        mse += (e as f64) * (e as f64);
        max_err = max_err.max(e.abs());
        *x = deq;
    }
    if !data.is_empty() {
        mse /= data.len() as f64;
    }
    FakeQuantStats {
        mse,
        max_abs_err: max_err,
        saturated,
        underflowed: 0,
    }
}

/// Per-channel symmetric INT8 fake quantization of `[channels, inner]`.
///
/// # Panics
///
/// Panics if `data.len() != channels * inner`.
pub fn fake_quant_int8_per_channel(
    data: &mut [f32],
    channels: usize,
    inner: usize,
) -> (Vec<Int8Codec>, FakeQuantStats) {
    assert_eq!(data.len(), channels * inner, "shape mismatch");
    let mut codecs = Vec::with_capacity(channels);
    let mut total = FakeQuantStats::default();
    let mut sq = 0.0f64;
    for c in 0..channels {
        let chunk = &mut data[c * inner..(c + 1) * inner];
        let codec = Int8Codec::calibrate(chunk, Int8Mode::Symmetric);
        let st = fake_quant_int8(chunk, &codec);
        sq += st.mse * inner as f64;
        total.max_abs_err = total.max_abs_err.max(st.max_abs_err);
        total.saturated += st.saturated;
        codecs.push(codec);
    }
    if !data.is_empty() {
        total.mse = sq / data.len() as f64;
    }
    (codecs, total)
}

/// Max representable value of the codec's format (helper so per-channel code
/// works with arbitrary [`crate::FpSpec`]s, not just the three named formats).
fn spec_format_max(codec: &Fp8Codec) -> f32 {
    codec.spec().max_value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Fp8Format;

    fn normal_with_outliers(n: usize, seed: u64) -> Vec<f32> {
        // Small deterministic LCG sampler; avoids pulling rand into unit
        // tests. Box-Muller on uniform pairs.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) as f32
        };
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let (u1, u2) = (next().max(1e-7), next());
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            let v = z * 0.5f32.sqrt(); // sigma^2 = 0.5 like Figure 1
            if i % 100 == 0 {
                out.push(-6.0 + 12.0 * next()); // 1% outliers in [-6, 6]
            } else {
                out.push(v);
            }
        }
        out
    }

    #[test]
    fn scale_rule_matches_paper() {
        // s = float_max / max_T
        assert_eq!(fp8_scale(Fp8Format::E4M3, 4.0), 112.0);
        assert_eq!(fp8_scale(Fp8Format::E3M4, 30.0), 1.0);
        assert_eq!(fp8_scale(Fp8Format::E5M2, 0.0), 1.0);
        assert_eq!(fp8_scale(Fp8Format::E4M3, f32::NAN), 1.0);
    }

    #[test]
    fn scaled_quantization_never_saturates_at_absmax() {
        let codec = Fp8Codec::new(Fp8Format::E4M3);
        let mut data = vec![-4.0, -1.0, 0.0, 0.5, 4.0];
        let s = fp8_scale(Fp8Format::E4M3, 4.0);
        let st = fake_quant_fp8(&mut data, &codec, s);
        assert_eq!(st.saturated, 0);
        // absmax maps exactly to float_max and back.
        assert_eq!(data[4], 4.0);
        assert_eq!(data[0], -4.0);
    }

    fn mse_for(data: &[f32], absmax: f32) -> std::collections::HashMap<String, f64> {
        let mut mses = std::collections::HashMap::new();
        for f in Fp8Format::ALL {
            let mut d = data.to_vec();
            let codec = Fp8Codec::new(f);
            let s = fp8_scale(f, absmax);
            let st = fake_quant_fp8(&mut d, &codec, s);
            mses.insert(format!("{f}"), st.mse);
        }
        let mut d = data.to_vec();
        let int8 = Int8Codec::from_range(-absmax, absmax, Int8Mode::Symmetric);
        let st = fake_quant_int8(&mut d, &int8);
        mses.insert("INT8".into(), st.mse);
        mses
    }

    #[test]
    fn figure1_mse_ordering() {
        // Figure-1 micro-result: on N(0, 0.5) with 1% outliers in [-6,6],
        // the high-mantissa formats dominate: E3M4 beats INT8, and E5M2
        // (2 mantissa bits) is the worst FP8 format.
        let data = normal_with_outliers(20_000, 42);
        let absmax = data.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let mses = mse_for(&data, absmax);
        assert!(mses["E3M4"] < mses["INT8"], "{mses:?}");
        assert!(mses["E5M2"] > mses["E4M3"], "{mses:?}");
        assert!(mses["E4M3"] > mses["E3M4"], "{mses:?}");
    }

    #[test]
    fn fp8_mse_scale_invariant_int8_degrades_with_outliers() {
        // The paper's core mechanic: INT8 MSE grows quadratically with the
        // outlier magnitude (the uniform grid stretches), while max-scaled
        // FP8 error is relative and nearly unchanged. LLM-style outliers
        // (>> 8 sigma) therefore flip the comparison decisively.
        let base = normal_with_outliers(20_000, 7);
        // Amplify the outliers 4x (to ~±24, ~34 sigma), leaving the bulk alone.
        let extreme: Vec<f32> = base
            .iter()
            .map(|&x| if x.abs() > 3.0 { x * 4.0 } else { x })
            .collect();

        let absmax_b = base.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let absmax_e = extreme.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let m_base = mse_for(&base, absmax_b);
        let m_ext = mse_for(&extreme, absmax_e);

        // INT8 degrades far faster than E4M3 (quadratic grid stretch vs
        // relative error on a 0.43%-mass tail).
        let int8_growth = m_ext["INT8"] / m_base["INT8"];
        let e4m3_growth = m_ext["E4M3"] / m_base["E4M3"];
        assert!(int8_growth > 4.0, "{m_base:?} {m_ext:?}");
        assert!(int8_growth > 3.0 * e4m3_growth, "{m_base:?} {m_ext:?}");
        // And with extreme outliers every scaled FP8 format beats INT8.
        assert!(m_ext["E4M3"] < m_ext["INT8"], "{m_ext:?}");
        assert!(m_ext["E3M4"] < m_ext["INT8"], "{m_ext:?}");
    }

    #[test]
    fn per_channel_beats_per_tensor_on_mixed_scale_weights() {
        // Two channels with very different magnitudes: per-channel scaling
        // restores precision to the small channel (paper §3.1).
        let mut w: Vec<f32> = Vec::new();
        for i in 0..64 {
            w.push(0.01 * ((i % 7) as f32 - 3.0)); // small channel
        }
        for i in 0..64 {
            w.push(10.0 * ((i % 5) as f32 - 2.0)); // large channel
        }
        let codec = Fp8Codec::new(Fp8Format::E3M4);

        let mut per_tensor = w.clone();
        let absmax = w.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let st_t = fake_quant_fp8(&mut per_tensor, &codec, fp8_scale(Fp8Format::E3M4, absmax));

        let mut per_chan = w.clone();
        let (_, st_c) = fake_quant_fp8_per_channel(&mut per_chan, &codec, 2, 64);
        assert!(
            st_c.mse <= st_t.mse,
            "per-channel {} vs per-tensor {}",
            st_c.mse,
            st_t.mse
        );
    }

    #[test]
    fn per_channel_zero_channel_passthrough() {
        let mut w = vec![0.0f32; 8];
        w.extend_from_slice(&[1.0, -1.0, 0.5, -0.5, 0.25, -0.25, 0.125, 2.0]);
        let codec = Fp8Codec::new(Fp8Format::E4M3);
        let (scales, st) = fake_quant_fp8_per_channel(&mut w, &codec, 2, 8);
        assert_eq!(scales[0], 1.0);
        assert_eq!(&w[..8], &[0.0; 8]);
        assert!(st.mse < 1e-4);
    }

    #[test]
    fn int8_per_channel_matches_manual() {
        let mut w = vec![1.0f32, -2.0, 0.5, 0.25, 100.0, -50.0, 25.0, 10.0];
        let (codecs, _) = fake_quant_int8_per_channel(&mut w, 2, 4);
        assert!((codecs[0].scale() - 2.0 / 127.0).abs() < 1e-7);
        assert!((codecs[1].scale() - 100.0 / 127.0).abs() < 1e-5);
    }

    #[test]
    fn empty_slice_ok() {
        let codec = Fp8Codec::new(Fp8Format::E4M3);
        let mut data: Vec<f32> = vec![];
        let st = fake_quant_fp8(&mut data, &codec, 1.0);
        assert_eq!(st.mse, 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn per_channel_shape_mismatch_panics() {
        let codec = Fp8Codec::new(Fp8Format::E4M3);
        let mut data = vec![0.0f32; 10];
        fake_quant_fp8_per_channel(&mut data, &codec, 3, 4);
    }
}
