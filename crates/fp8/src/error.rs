//! Typed errors for the fallible parts of the FP8 crate.
//!
//! Mirrors the PR 2 convention in `ptq-nn`: constructors that used to
//! `assert!`/`expect` now return `Result<_, Fp8Error>` so callers can
//! fail soft instead of unwinding through a sweep.

use std::fmt;

/// Errors from quantized-storage constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fp8Error {
    /// `data.len()` does not match the product of the requested shape.
    ShapeMismatch {
        /// Number of f32 elements supplied.
        data_len: usize,
        /// The requested logical shape.
        shape: Vec<usize>,
    },
    /// Per-channel quantization needs at least one axis to scale over.
    ScalarShape,
    /// Per-channel quantization over an empty leading axis.
    EmptyLeadingAxis,
}

impl fmt::Display for Fp8Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fp8Error::ShapeMismatch { data_len, shape } => write!(
                f,
                "shape/product mismatch: {data_len} elements vs shape {shape:?} \
                 (product {})",
                shape.iter().product::<usize>()
            ),
            Fp8Error::ScalarShape => {
                write!(f, "per-channel quantization needs a non-scalar shape")
            }
            Fp8Error::EmptyLeadingAxis => {
                write!(f, "per-channel quantization over an empty leading axis")
            }
        }
    }
}

impl std::error::Error for Fp8Error {}
