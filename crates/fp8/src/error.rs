//! Typed errors for the fallible parts of the FP8 crate.
//!
//! Mirrors the PR 2 convention in `ptq-nn`: constructors that used to
//! `assert!`/`expect` now return `Result<_, Fp8Error>` so callers can
//! fail soft instead of unwinding through a sweep.

use std::fmt;

/// Errors from quantized-storage constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fp8Error {
    /// `data.len()` does not match the product of the requested shape.
    ShapeMismatch {
        /// Number of f32 elements supplied.
        data_len: usize,
        /// The requested logical shape.
        shape: Vec<usize>,
    },
    /// Per-channel quantization needs at least one axis to scale over.
    ScalarShape,
    /// Per-channel quantization over an empty leading axis.
    EmptyLeadingAxis,
    /// A per-channel scale vector whose length disagrees with the shape's
    /// leading axis (raw-parts reconstruction only).
    ScaleCountMismatch {
        /// Channels implied by the shape (`shape[0]`).
        expected: usize,
        /// Scales actually supplied.
        got: usize,
    },
    /// A zero-copy code window that falls outside its backing buffer.
    SharedRange {
        /// Requested start offset.
        offset: usize,
        /// Requested window length.
        len: usize,
        /// Actual backing-buffer length.
        buf_len: usize,
    },
    /// Raw codec parameters that violate the codec's invariants (e.g. a
    /// non-finite or non-positive scale, an out-of-range zero point).
    InvalidCodec {
        /// What was invalid.
        detail: String,
    },
}

impl fmt::Display for Fp8Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fp8Error::ShapeMismatch { data_len, shape } => write!(
                f,
                "shape/product mismatch: {data_len} elements vs shape {shape:?} \
                 (product {})",
                shape.iter().product::<usize>()
            ),
            Fp8Error::ScalarShape => {
                write!(f, "per-channel quantization needs a non-scalar shape")
            }
            Fp8Error::EmptyLeadingAxis => {
                write!(f, "per-channel quantization over an empty leading axis")
            }
            Fp8Error::ScaleCountMismatch { expected, got } => write!(
                f,
                "per-channel scale count mismatch: shape implies {expected} channels, \
                 got {got} scales"
            ),
            Fp8Error::SharedRange {
                offset,
                len,
                buf_len,
            } => write!(
                f,
                "code window [{offset}, {offset}+{len}) exceeds shared buffer of {buf_len} bytes"
            ),
            Fp8Error::InvalidCodec { detail } => {
                write!(f, "invalid codec parameters: {detail}")
            }
        }
    }
}

impl std::error::Error for Fp8Error {}
