//! INT8 affine quantization codecs — the baseline the paper compares
//! FP8 formats against.
//!
//! Two modes are provided, matching the configurations used in the paper's
//! INT8 baseline (Neural Compressor defaults):
//!
//! * **Symmetric** — `q = clamp(round(x / s), -127, 127)`, `s = absmax / 127`.
//!   Used for weights (and for activations in the "Static CV" recipe).
//! * **Asymmetric** — `q = clamp(round(x / s) + z, 0, 255)` with a zero
//!   point, used for activations with skewed ranges.
//!
//! The defining property the paper leans on (Figure 1): INT8's step size is
//! *uniform* and set by the largest observed value, so outliers stretch the
//! grid and starve the bulk of the distribution of resolution. The FP8 codecs
//! in [`crate::codec`] have logarithmic spacing instead.

use crate::error::Fp8Error;
use serde::{Deserialize, Serialize};

/// Symmetric (weight-style) vs asymmetric (activation-style) affine mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Int8Mode {
    /// Zero point fixed at 0; range ±absmax mapped to ±127.
    #[default]
    Symmetric,
    /// Affine with zero point; range [min, max] mapped to [0, 255].
    Asymmetric,
}

/// Scale granularity for INT8 (mirrors the FP8 options in
/// [`crate::quantize`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Int8Granularity {
    /// One scale for the whole tensor.
    #[default]
    PerTensor,
    /// One scale per output channel (weights).
    PerChannel,
}

/// A calibrated INT8 codec: scale (+ zero point for asymmetric mode).
///
/// ```
/// use ptq_fp8::{Int8Codec, Int8Mode};
/// let c = Int8Codec::calibrate(&[-1.0, 0.5, 2.0], Int8Mode::Symmetric);
/// let q = c.quantize(0.5);
/// assert!((q - 0.5).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Int8Codec {
    mode: Int8Mode,
    scale: f32,
    zero_point: i32,
}

impl Int8Codec {
    /// Build a codec from explicit range bounds `[lo, hi]`.
    ///
    /// For symmetric mode the range used is `±max(|lo|, |hi|)`. Degenerate
    /// all-zero ranges produce a unit-scale codec (quantizing zeros to zero).
    pub fn from_range(lo: f32, hi: f32, mode: Int8Mode) -> Self {
        match mode {
            Int8Mode::Symmetric => {
                let absmax = lo.abs().max(hi.abs());
                let scale = if absmax > 0.0 { absmax / 127.0 } else { 1.0 };
                Int8Codec {
                    mode,
                    scale,
                    zero_point: 0,
                }
            }
            Int8Mode::Asymmetric => {
                // Ensure the representable range includes zero so that
                // padding/ReLU zeros are exact (standard practice).
                let lo = lo.min(0.0);
                let hi = hi.max(0.0);
                let scale = if hi > lo { (hi - lo) / 255.0 } else { 1.0 };
                let zero_point = (-lo / scale).round() as i32;
                Int8Codec {
                    mode,
                    scale,
                    zero_point: zero_point.clamp(0, 255),
                }
            }
        }
    }

    /// Calibrate directly from data (min/max observation).
    pub fn calibrate(data: &[f32], mode: Int8Mode) -> Self {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &x in data {
            if x.is_finite() {
                lo = lo.min(x);
                hi = hi.max(x);
            }
        }
        if !lo.is_finite() || !hi.is_finite() {
            return Self::from_range(0.0, 0.0, mode);
        }
        Self::from_range(lo, hi, mode)
    }

    /// Reassemble a codec from previously extracted parts (the artifact
    /// deserialization path).
    ///
    /// # Errors
    ///
    /// Returns [`Fp8Error::InvalidCodec`] when `scale` is non-finite or
    /// non-positive, or when `zero_point` is outside the mode's legal
    /// range (`0` exactly for symmetric, `0..=255` for asymmetric) — the
    /// invariants [`Int8Codec::from_range`] always establishes.
    pub fn from_raw_parts(mode: Int8Mode, scale: f32, zero_point: i32) -> Result<Self, Fp8Error> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(Fp8Error::InvalidCodec {
                detail: format!("scale {scale} must be finite and positive"),
            });
        }
        let zp_ok = match mode {
            Int8Mode::Symmetric => zero_point == 0,
            Int8Mode::Asymmetric => (0..=255).contains(&zero_point),
        };
        if !zp_ok {
            return Err(Fp8Error::InvalidCodec {
                detail: format!("zero point {zero_point} out of range for {mode:?} mode"),
            });
        }
        Ok(Int8Codec {
            mode,
            scale,
            zero_point,
        })
    }

    /// The quantization step size.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The zero point (0 in symmetric mode).
    pub fn zero_point(&self) -> i32 {
        self.zero_point
    }

    /// The codec's mode.
    pub fn mode(&self) -> Int8Mode {
        self.mode
    }

    /// Encode a value to its integer code.
    #[inline]
    pub fn encode(&self, x: f32) -> i32 {
        match self.mode {
            Int8Mode::Symmetric => ((x / self.scale).round() as i32).clamp(-127, 127),
            Int8Mode::Asymmetric => {
                ((x / self.scale).round() as i32 + self.zero_point).clamp(0, 255)
            }
        }
    }

    /// Decode an integer code back to f32.
    #[inline]
    pub fn decode(&self, q: i32) -> f32 {
        match self.mode {
            Int8Mode::Symmetric => q as f32 * self.scale,
            Int8Mode::Asymmetric => (q - self.zero_point) as f32 * self.scale,
        }
    }

    /// Fake-quantize one value (`decode(encode(x))`).
    #[inline]
    pub fn quantize(&self, x: f32) -> f32 {
        self.decode(self.encode(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_roundtrip_grid() {
        let c = Int8Codec::from_range(-2.0, 2.0, Int8Mode::Symmetric);
        for q in -127..=127 {
            let v = c.decode(q);
            assert_eq!(c.encode(v), q);
        }
    }

    #[test]
    fn symmetric_step_uniform() {
        let c = Int8Codec::from_range(-1.0, 1.0, Int8Mode::Symmetric);
        let step = c.scale();
        assert!((step - 1.0 / 127.0).abs() < 1e-9);
        // Uniform spacing: decode(q+1) - decode(q) constant.
        for q in -127..127 {
            assert!((c.decode(q + 1) - c.decode(q) - step).abs() < 1e-6);
        }
    }

    #[test]
    fn outlier_stretches_grid() {
        // Figure-1 mechanic: one outlier at 6.0 makes the step ~47x coarser
        // than a clean ±0.127... range would be.
        let clean = Int8Codec::from_range(-1.0, 1.0, Int8Mode::Symmetric);
        let stretched = Int8Codec::from_range(-1.0, 6.0, Int8Mode::Symmetric);
        assert!(stretched.scale() > 5.0 * clean.scale());
        // Small values now quantize much more coarsely.
        let x = 0.01;
        let e_clean = (clean.quantize(x) - x).abs();
        let e_str = (stretched.quantize(x) - x).abs();
        assert!(e_str >= e_clean);
    }

    #[test]
    fn asymmetric_zero_is_exact() {
        let c = Int8Codec::from_range(-0.3, 5.7, Int8Mode::Asymmetric);
        assert_eq!(c.quantize(0.0), 0.0);
    }

    #[test]
    fn asymmetric_covers_skewed_range() {
        let c = Int8Codec::from_range(0.0, 10.0, Int8Mode::Asymmetric);
        assert!((c.quantize(10.0) - 10.0).abs() < c.scale());
        assert!((c.quantize(5.0) - 5.0).abs() <= 0.5 * c.scale() + 1e-6);
        // Symmetric would waste half its codes on the never-seen negatives.
        let s = Int8Codec::from_range(0.0, 10.0, Int8Mode::Symmetric);
        assert!(c.scale() < s.scale());
    }

    #[test]
    fn saturation_clamps() {
        let c = Int8Codec::from_range(-1.0, 1.0, Int8Mode::Symmetric);
        assert_eq!(c.quantize(100.0), c.decode(127));
        assert_eq!(c.quantize(-100.0), c.decode(-127));
    }

    #[test]
    fn degenerate_range() {
        let c = Int8Codec::from_range(0.0, 0.0, Int8Mode::Symmetric);
        assert_eq!(c.quantize(0.0), 0.0);
        let c = Int8Codec::calibrate(&[], Int8Mode::Asymmetric);
        assert_eq!(c.quantize(0.0), 0.0);
    }

    #[test]
    fn raw_parts_roundtrip_and_validation() {
        let c = Int8Codec::from_range(-0.3, 5.7, Int8Mode::Asymmetric);
        let rebuilt = Int8Codec::from_raw_parts(c.mode(), c.scale(), c.zero_point()).unwrap();
        assert_eq!(c, rebuilt);
        let c = Int8Codec::from_range(-2.0, 2.0, Int8Mode::Symmetric);
        assert_eq!(
            Int8Codec::from_raw_parts(c.mode(), c.scale(), c.zero_point()).unwrap(),
            c
        );
        for bad_scale in [0.0, -1.0, f32::NAN, f32::INFINITY] {
            assert!(Int8Codec::from_raw_parts(Int8Mode::Symmetric, bad_scale, 0).is_err());
        }
        assert!(Int8Codec::from_raw_parts(Int8Mode::Symmetric, 1.0, 3).is_err());
        assert!(Int8Codec::from_raw_parts(Int8Mode::Asymmetric, 1.0, 256).is_err());
        assert!(Int8Codec::from_raw_parts(Int8Mode::Asymmetric, 1.0, -1).is_err());
        assert!(Int8Codec::from_raw_parts(Int8Mode::Asymmetric, 1.0, 255).is_ok());
    }

    #[test]
    fn calibrate_ignores_nonfinite() {
        let c = Int8Codec::calibrate(&[1.0, f32::NAN, -2.0, f32::INFINITY], Int8Mode::Symmetric);
        assert!((c.scale() - 2.0 / 127.0).abs() < 1e-9);
    }
}
