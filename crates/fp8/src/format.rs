//! FP8 binary format descriptions (Table 1 of the paper).
//!
//! A format is described by a [`FpSpec`]: exponent width, mantissa width,
//! exponent bias and the special-value encoding style. The three formats the
//! paper studies are exposed as the [`Fp8Format`] enum, but [`FpSpec`] is
//! fully generic so other `EeMm` splits (e.g. E2M5 from the related-work
//! discussion) can be instantiated for ablations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How a format encodes NaN (and whether it has ±Infinity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NanEncoding {
    /// IEEE-754-style: exponent field all ones means Inf (mantissa = 0) or
    /// NaN (mantissa ≠ 0). Used by E5M2.
    Ieee,
    /// Extended encoding: no infinities; only the all-ones bit sequence
    /// (per sign) is NaN, every other exponent-all-ones code is a normal
    /// value. Used by E4M3 and E3M4.
    Extended,
}

/// The three FP8 formats evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fp8Format {
    /// 5 exponent bits, 2 mantissa bits, bias 15. Widest dynamic range,
    /// lowest precision. IEEE-like encoding with ±Inf.
    E5M2,
    /// 4 exponent bits, 3 mantissa bits, bias 7. The paper's recommended
    /// default for NLP models.
    E4M3,
    /// 3 exponent bits, 4 mantissa bits, bias 3. The paper's recommended
    /// default for computer-vision models.
    E3M4,
}

impl Fp8Format {
    /// All three formats, in the order the paper lists them.
    pub const ALL: [Fp8Format; 3] = [Fp8Format::E5M2, Fp8Format::E4M3, Fp8Format::E3M4];

    /// The format's binary layout and special-value rules.
    pub fn spec(self) -> FpSpec {
        match self {
            Fp8Format::E5M2 => FpSpec::new(5, 2, 15, NanEncoding::Ieee),
            Fp8Format::E4M3 => FpSpec::new(4, 3, 7, NanEncoding::Extended),
            Fp8Format::E3M4 => FpSpec::new(3, 4, 3, NanEncoding::Extended),
        }
    }

    /// Largest finite representable magnitude (Table 1 "Max value").
    pub fn max_value(self) -> f32 {
        self.spec().max_value()
    }

    /// Smallest positive subnormal magnitude (Table 1 "Min value").
    pub fn min_subnormal(self) -> f32 {
        self.spec().min_subnormal()
    }

    /// Number of mantissa bits.
    pub fn mantissa_bits(self) -> u32 {
        self.spec().man_bits
    }

    /// Number of exponent bits.
    pub fn exponent_bits(self) -> u32 {
        self.spec().exp_bits
    }

    /// Whether the paper applies *direct* quantization (no range
    /// calibration / scaling) for this format. True only for E5M2, whose
    /// dynamic range is wide enough to absorb activation outliers (§3).
    pub fn direct_quantization(self) -> bool {
        matches!(self, Fp8Format::E5M2)
    }
}

impl fmt::Display for Fp8Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fp8Format::E5M2 => write!(f, "E5M2"),
            Fp8Format::E4M3 => write!(f, "E4M3"),
            Fp8Format::E3M4 => write!(f, "E3M4"),
        }
    }
}

/// Generic binary floating-point format description: `1 + exp_bits +
/// man_bits` must equal 8 for the FP8 formats, but the math is generic so
/// narrower/wider splits can be instantiated in tests and ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FpSpec {
    /// Exponent field width in bits (`e` in the paper's `EeMm` notation).
    pub exp_bits: u32,
    /// Mantissa field width in bits (`m` in the paper's `EeMm` notation).
    pub man_bits: u32,
    /// Exponent bias `b`; stored exponent `E` encodes scale `2^(E-b)`.
    pub bias: i32,
    /// Special-value encoding style.
    pub nan_encoding: NanEncoding,
}

impl FpSpec {
    /// Build a spec. The total width (sign + exponent + mantissa) must fit
    /// in 8 bits for the `u8` codecs in this crate.
    ///
    /// # Panics
    ///
    /// Panics if `exp_bits == 0`, `1 + exp_bits + man_bits > 8`, or the
    /// format cannot represent any finite value.
    pub fn new(exp_bits: u32, man_bits: u32, bias: i32, nan_encoding: NanEncoding) -> Self {
        assert!(exp_bits >= 1, "need at least one exponent bit");
        assert!(
            1 + exp_bits + man_bits <= 8,
            "sign + exponent + mantissa must fit in 8 bits"
        );
        if nan_encoding == NanEncoding::Ieee {
            // IEEE encoding reserves the top exponent entirely; with a single
            // exponent value there would be no finite normals.
            assert!(exp_bits >= 2, "IEEE encoding needs >= 2 exponent bits");
        }
        FpSpec {
            exp_bits,
            man_bits,
            bias,
            nan_encoding,
        }
    }

    /// Exponent field value that is all ones (`2^exp_bits - 1`).
    #[inline]
    pub fn exp_all_ones(&self) -> u32 {
        (1u32 << self.exp_bits) - 1
    }

    /// Mantissa field mask (`2^man_bits - 1`).
    #[inline]
    pub fn man_mask(&self) -> u32 {
        (1u32 << self.man_bits) - 1
    }

    /// Unbiased exponent of the smallest normal number (`1 - bias`).
    #[inline]
    pub fn min_normal_exp(&self) -> i32 {
        1 - self.bias
    }

    /// Unbiased exponent of the largest finite number.
    #[inline]
    pub fn max_exp(&self) -> i32 {
        match self.nan_encoding {
            // IEEE: top exponent is reserved for Inf/NaN.
            NanEncoding::Ieee => self.exp_all_ones() as i32 - 1 - self.bias,
            // Extended: top exponent carries normal values (except all-ones
            // mantissa, which is NaN).
            NanEncoding::Extended => self.exp_all_ones() as i32 - self.bias,
        }
    }

    /// Largest finite representable magnitude.
    pub fn max_value(&self) -> f32 {
        let m = self.man_bits;
        let top_mantissa = match self.nan_encoding {
            // IEEE: full mantissa available below the reserved exponent.
            NanEncoding::Ieee => self.man_mask(),
            // Extended: all-ones mantissa at the top exponent is NaN, so the
            // largest usable mantissa is all-ones minus one.
            NanEncoding::Extended => self.man_mask().saturating_sub(1),
        };
        let frac = 1.0 + top_mantissa as f32 / (1u32 << m) as f32;
        frac * (self.max_exp() as f32).exp2()
    }

    /// Smallest positive subnormal magnitude: `2^(1 - bias - man_bits)`.
    pub fn min_subnormal(&self) -> f32 {
        ((self.min_normal_exp() - self.man_bits as i32) as f32).exp2()
    }

    /// Smallest positive *normal* magnitude: `2^(1 - bias)`.
    pub fn min_normal(&self) -> f32 {
        (self.min_normal_exp() as f32).exp2()
    }

    /// Unit in the last place at magnitude `v` (spacing of the format's grid
    /// around `v`), assuming `v` is finite and inside the normal range.
    pub fn ulp_at(&self, v: f32) -> f32 {
        let a = v.abs();
        if a < self.min_normal() {
            return self.min_subnormal();
        }
        let e = a.log2().floor() as i32;
        let e = e.clamp(self.min_normal_exp(), self.max_exp());
        ((e - self.man_bits as i32) as f32).exp2()
    }

    /// Total number of distinct finite non-negative magnitudes (including
    /// zero). Useful for exhaustive enumeration in tests.
    pub fn finite_magnitude_count(&self) -> u32 {
        let per_exp = 1u32 << self.man_bits;
        let normal_exps = (self.max_exp() - self.min_normal_exp() + 1) as u32;
        let reserved_top = match self.nan_encoding {
            NanEncoding::Ieee => 0, // the whole top exponent is excluded from max_exp already
            NanEncoding::Extended => 1, // all-ones mantissa at top exponent is NaN
        };
        // subnormals (incl. zero) + normals - reserved NaN slot
        per_exp + normal_exps * per_exp - reserved_top
    }
}

impl fmt::Display for FpSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "E{}M{}(bias={})",
            self.exp_bits, self.man_bits, self.bias
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_max_values() {
        assert_eq!(Fp8Format::E5M2.max_value(), 57344.0);
        assert_eq!(Fp8Format::E4M3.max_value(), 448.0);
        assert_eq!(Fp8Format::E3M4.max_value(), 30.0);
    }

    #[test]
    fn table1_min_subnormals() {
        assert_eq!(Fp8Format::E5M2.min_subnormal(), 2.0f32.powi(-16));
        assert_eq!(Fp8Format::E4M3.min_subnormal(), 2.0f32.powi(-9));
        assert_eq!(Fp8Format::E3M4.min_subnormal(), 2.0f32.powi(-6));
    }

    #[test]
    fn table1_biases() {
        assert_eq!(Fp8Format::E5M2.spec().bias, 15);
        assert_eq!(Fp8Format::E4M3.spec().bias, 7);
        assert_eq!(Fp8Format::E3M4.spec().bias, 3);
    }

    #[test]
    fn e5m2_is_ieee_others_extended() {
        assert_eq!(Fp8Format::E5M2.spec().nan_encoding, NanEncoding::Ieee);
        assert_eq!(Fp8Format::E4M3.spec().nan_encoding, NanEncoding::Extended);
        assert_eq!(Fp8Format::E3M4.spec().nan_encoding, NanEncoding::Extended);
    }

    #[test]
    fn min_normals() {
        assert_eq!(Fp8Format::E5M2.spec().min_normal(), 2.0f32.powi(-14));
        assert_eq!(Fp8Format::E4M3.spec().min_normal(), 2.0f32.powi(-6));
        assert_eq!(Fp8Format::E3M4.spec().min_normal(), 2.0f32.powi(-2));
    }

    #[test]
    fn ulp_examples() {
        let s = Fp8Format::E4M3.spec();
        // Around 1.0 (exponent 0), the grid spacing is 2^-3.
        assert_eq!(s.ulp_at(1.0), 0.125);
        // Around 448 (exponent 8), spacing is 2^5 = 32.
        assert_eq!(s.ulp_at(448.0), 32.0);
        // In the subnormal range the spacing equals the min subnormal.
        assert_eq!(s.ulp_at(0.001), s.min_subnormal());
    }

    #[test]
    fn magnitude_counts() {
        // E5M2: subnormal block 4 (incl zero) + 30 normal exponents * 4 = 124.
        assert_eq!(Fp8Format::E5M2.spec().finite_magnitude_count(), 124);
        // E4M3: 8 + 15*8 - 1(NaN slot) = 127.
        assert_eq!(Fp8Format::E4M3.spec().finite_magnitude_count(), 127);
        // E3M4: 16 + 7*16 - 1 = 127.
        assert_eq!(Fp8Format::E3M4.spec().finite_magnitude_count(), 127);
    }

    #[test]
    fn direct_quantization_only_for_e5m2() {
        assert!(Fp8Format::E5M2.direct_quantization());
        assert!(!Fp8Format::E4M3.direct_quantization());
        assert!(!Fp8Format::E3M4.direct_quantization());
    }

    #[test]
    fn display_names() {
        assert_eq!(Fp8Format::E5M2.to_string(), "E5M2");
        assert_eq!(Fp8Format::E4M3.spec().to_string(), "E4M3(bias=7)");
    }

    #[test]
    #[should_panic(expected = "fit in 8 bits")]
    fn spec_rejects_too_wide() {
        FpSpec::new(5, 4, 15, NanEncoding::Ieee);
    }
}
