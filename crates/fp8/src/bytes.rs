//! [`CodeBytes`]: the byte buffer behind a stored FP8 tensor's codes —
//! either owned, or a zero-copy window into a shared read-only buffer.
//!
//! Freshly quantized tensors own their codes (`Vec<u8>`). Tensors loaded
//! from an on-disk artifact instead *borrow* a range of the artifact's
//! single backing buffer (a memory map where the platform supports it),
//! so loading a model costs one mapping, not one heap copy per weight.
//! This crate stays storage-agnostic: the shared buffer is any
//! `Arc<dyn AsRef<[u8]> + Send + Sync>`, supplied by whichever layer owns
//! the file format.

use crate::error::Fp8Error;
use serde::{Deserialize, Serialize, Value};
use std::ops::Deref;
use std::sync::Arc;

/// A shared read-only byte buffer a [`CodeBytes`] window can borrow from.
pub type SharedBytes = Arc<dyn AsRef<[u8]> + Send + Sync>;

/// Row-major FP8 code bytes: owned, or a validated window into a shared
/// buffer. Behaves as `&[u8]` via `Deref`; equality and hashing-adjacent
/// semantics (`PartialEq`) compare byte content, not representation, so
/// a loaded tensor compares equal to the freshly quantized one.
#[derive(Clone)]
pub struct CodeBytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Owned(Vec<u8>),
    Shared {
        buf: SharedBytes,
        offset: usize,
        len: usize,
    },
}

impl CodeBytes {
    /// A zero-copy window of `len` bytes at `offset` into `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`Fp8Error::SharedRange`] when `offset + len` overflows or
    /// exceeds the buffer.
    pub fn from_shared(buf: SharedBytes, offset: usize, len: usize) -> Result<Self, Fp8Error> {
        let buf_len = (*buf).as_ref().len();
        let in_bounds = offset.checked_add(len).is_some_and(|end| end <= buf_len);
        if !in_bounds {
            return Err(Fp8Error::SharedRange {
                offset,
                len,
                buf_len,
            });
        }
        Ok(CodeBytes {
            repr: Repr::Shared { buf, offset, len },
        })
    }

    /// The code bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Owned(v) => v,
            Repr::Shared { buf, offset, len } => &(**buf).as_ref()[*offset..*offset + *len],
        }
    }

    /// Number of code bytes (== number of tensor elements).
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Owned(v) => v.len(),
            Repr::Shared { len, .. } => *len,
        }
    }

    /// True when the buffer holds no codes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the bytes are borrowed from a shared buffer rather than
    /// owned (observable so tests can assert the zero-copy path ran).
    pub fn is_shared(&self) -> bool {
        matches!(self.repr, Repr::Shared { .. })
    }

    /// An owned copy of the bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for CodeBytes {
    fn from(v: Vec<u8>) -> Self {
        CodeBytes {
            repr: Repr::Owned(v),
        }
    }
}

impl Deref for CodeBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for CodeBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for CodeBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for CodeBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = if self.is_shared() { "shared" } else { "owned" };
        write!(f, "CodeBytes({kind}, {} bytes)", self.len())
    }
}

// Mirror what `#[derive(Serialize)]` emits for `Vec<u8>` so containing
// structs (e.g. `StoredTensor`) can keep deriving.
impl Serialize for CodeBytes {
    fn serialize(&self) -> Value {
        Value::Array(
            self.as_slice()
                .iter()
                .map(|&b| Value::UInt(u64::from(b)))
                .collect(),
        )
    }
}

impl Deserialize for CodeBytes {}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared(bytes: Vec<u8>) -> SharedBytes {
        Arc::new(bytes)
    }

    #[test]
    fn owned_and_shared_compare_by_content() {
        let owned = CodeBytes::from(vec![1, 2, 3]);
        let buf = shared(vec![0, 1, 2, 3, 4]);
        let view = CodeBytes::from_shared(buf, 1, 3).unwrap();
        assert!(!owned.is_shared());
        assert!(view.is_shared());
        assert_eq!(owned, view);
        assert_eq!(&view[..], &[1, 2, 3]);
        assert_eq!(view.to_vec(), vec![1, 2, 3]);
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
    }

    #[test]
    fn out_of_bounds_windows_are_rejected() {
        let buf = shared(vec![0u8; 8]);
        assert!(CodeBytes::from_shared(Arc::clone(&buf), 0, 8).is_ok());
        assert_eq!(
            CodeBytes::from_shared(Arc::clone(&buf), 4, 8).unwrap_err(),
            Fp8Error::SharedRange {
                offset: 4,
                len: 8,
                buf_len: 8
            }
        );
        // Overflow must not wrap around.
        assert!(CodeBytes::from_shared(buf, usize::MAX, 2).is_err());
    }

    #[test]
    fn clone_of_shared_window_shares_the_buffer() {
        let buf = shared(vec![9u8; 16]);
        let a = CodeBytes::from_shared(buf, 4, 4).unwrap();
        let b = a.clone();
        assert_eq!(a, b);
        assert!(b.is_shared());
    }

    #[test]
    fn serializes_like_a_byte_vec() {
        let cb = CodeBytes::from(vec![7, 8]);
        assert_eq!(
            Serialize::serialize(&cb),
            Serialize::serialize(&vec![7u8, 8])
        );
    }

    #[test]
    fn debug_is_a_summary_not_a_dump() {
        let cb = CodeBytes::from(vec![0u8; 1_000_000]);
        let s = format!("{cb:?}");
        assert!(s.contains("owned"));
        assert!(s.len() < 64);
    }
}
