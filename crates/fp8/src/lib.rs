//! # ptq-fp8 — bit-exact FP8 and INT8 numeric codecs
//!
//! Software emulation of the three 8-bit floating-point formats studied in
//! *"Efficient Post-training Quantization with FP8 Formats"* (MLSys 2024):
//! **E5M2**, **E4M3** and **E3M4**, plus the INT8 affine codecs the paper
//! compares against.
//!
//! The binary formats follow Table 1 of the paper:
//!
//! | | E5M2 | E4M3 | E3M4 |
//! |---|---|---|---|
//! | Exponent bias | 15 | 7 | 3 |
//! | Max value | 57344.0 | 448.0 | 30.0 |
//! | Min subnormal | 2⁻¹⁶ ≈ 1.5e-5 | 2⁻⁹ ≈ 1.9e-3 | 2⁻⁶ ≈ 1.5e-2 |
//! | Subnormals | yes | yes | yes |
//! | NaNs | all (IEEE-like) | single (all-ones) | single (all-ones) |
//! | Infinity | yes | no | no |
//!
//! E5M2 uses IEEE-754-style encoding rules; E4M3 and E3M4 use the *extended*
//! encoding that reclaims ±Infinity for useful values and reserves only the
//! all-ones bit pattern for NaN.
//!
//! The crate is deliberately dependency-light and `f32`-based: the paper's
//! own experiments ran on a software emulation toolkit over FP32 hardware,
//! and this crate is the Rust analogue of that toolkit.
//!
//! ## Quick example
//!
//! ```
//! use ptq_fp8::{Fp8Format, Fp8Codec};
//!
//! let codec = Fp8Codec::new(Fp8Format::E4M3);
//! let code = codec.encode(1.3);
//! let back = codec.decode(code);
//! assert!((back - 1.3).abs() < 0.1); // 3 mantissa bits of precision
//! assert_eq!(codec.decode(codec.encode(448.0)), 448.0); // max value exact
//! ```

pub mod bytes;
pub mod codec;
pub mod density;
pub mod error;
pub mod format;
pub mod int8;
pub mod lut;
pub mod quantize;
pub mod storage;

pub use bytes::{CodeBytes, SharedBytes};
pub use codec::{Fp8Codec, OverflowPolicy, Rounding};
pub use density::{density_at, grid_points_in};
pub use error::Fp8Error;
pub use format::{Fp8Format, FpSpec, NanEncoding};
pub use int8::{Int8Codec, Int8Granularity, Int8Mode};
pub use lut::Fp8Lut;
pub use quantize::{
    fake_quant_fp8, fake_quant_fp8_lut, fake_quant_fp8_per_channel, fake_quant_fp8_per_channel_lut,
    fake_quant_int8, fake_quant_int8_per_channel, fp8_scale, FakeQuantStats, QuantizedTensorStats,
};
pub use storage::{absmax_nan_aware, check_shape, StoredScales, StoredTensor};
