//! Scalar encode/decode between `f32` and FP8 bit patterns.
//!
//! The encoder implements round-to-nearest-even (the rounding mode the FP8
//! Emulation Toolkit uses for inference), full subnormal support and the
//! Table-1 special-value rules. All arithmetic on the hot path uses exact
//! power-of-two scaling, so results are bit-exact regardless of the host's
//! FMA/rounding configuration.

use crate::format::{Fp8Format, FpSpec, NanEncoding};
use serde::{Deserialize, Serialize};

/// What to do when a finite input exceeds the format's largest finite value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum OverflowPolicy {
    /// Clamp to the largest finite value (sign-preserving). This is the
    /// behaviour used throughout the paper: scales are chosen as
    /// `float_max / max_T`, so residual overflow is saturated.
    #[default]
    Saturate,
    /// IEEE-style: overflow produces ±Inf on E5M2; on the extended formats
    /// (which have no Inf) it produces NaN.
    NonSaturating,
}

/// Rounding mode used when a value falls between two grid points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Rounding {
    /// Round to nearest, ties to even mantissa (IEEE default).
    #[default]
    NearestEven,
    /// Truncate toward zero.
    TowardZero,
}

/// A configured FP8 scalar codec.
///
/// ```
/// use ptq_fp8::{Fp8Codec, Fp8Format};
/// let c = Fp8Codec::new(Fp8Format::E3M4);
/// assert_eq!(c.decode(c.encode(0.5)), 0.5);
/// assert_eq!(c.decode(c.encode(1e9)), 30.0); // saturates at Table-1 max
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fp8Codec {
    spec: FpSpec,
    overflow: OverflowPolicy,
    rounding: Rounding,
}

impl Fp8Codec {
    /// Codec for one of the paper's three formats with default policies
    /// (saturating overflow, round-to-nearest-even).
    pub fn new(format: Fp8Format) -> Self {
        Self::from_spec(format.spec())
    }

    /// Codec for an arbitrary [`FpSpec`] with default policies.
    pub fn from_spec(spec: FpSpec) -> Self {
        Fp8Codec {
            spec,
            overflow: OverflowPolicy::Saturate,
            rounding: Rounding::NearestEven,
        }
    }

    /// Replace the overflow policy.
    pub fn with_overflow(mut self, overflow: OverflowPolicy) -> Self {
        self.overflow = overflow;
        self
    }

    /// Replace the rounding mode.
    pub fn with_rounding(mut self, rounding: Rounding) -> Self {
        self.rounding = rounding;
        self
    }

    /// The underlying format spec.
    pub fn spec(&self) -> &FpSpec {
        &self.spec
    }

    /// The configured overflow policy.
    pub fn overflow(&self) -> OverflowPolicy {
        self.overflow
    }

    /// The configured rounding mode.
    pub fn rounding(&self) -> Rounding {
        self.rounding
    }

    /// Bit position of the sign bit (= `exp_bits + man_bits`).
    #[inline]
    fn sign_shift(&self) -> u32 {
        self.spec.exp_bits + self.spec.man_bits
    }

    /// The bit pattern of the canonical NaN (positive sign).
    pub fn nan_code(&self) -> u8 {
        let m = self.spec.man_bits;
        match self.spec.nan_encoding {
            // Quiet-NaN style: top exponent, MSB of mantissa set.
            NanEncoding::Ieee => {
                let man = if m > 0 { 1u32 << (m - 1) } else { 0 };
                ((self.spec.exp_all_ones() << m) | man) as u8
            }
            // Extended: the single all-ones sequence.
            NanEncoding::Extended => ((self.spec.exp_all_ones() << m) | self.spec.man_mask()) as u8,
        }
    }

    /// The bit pattern of +Inf, if the format has one.
    pub fn inf_code(&self) -> Option<u8> {
        match self.spec.nan_encoding {
            NanEncoding::Ieee => Some((self.spec.exp_all_ones() << self.spec.man_bits) as u8),
            NanEncoding::Extended => None,
        }
    }

    /// The bit pattern of the largest finite positive value.
    pub fn max_code(&self) -> u8 {
        let m = self.spec.man_bits;
        match self.spec.nan_encoding {
            NanEncoding::Ieee => {
                (((self.spec.exp_all_ones() - 1) << m) | self.spec.man_mask()) as u8
            }
            NanEncoding::Extended => {
                ((self.spec.exp_all_ones() << m) | (self.spec.man_mask() - 1)) as u8
            }
        }
    }

    /// True if `code` decodes to NaN.
    pub fn is_nan(&self, code: u8) -> bool {
        let m = self.spec.man_bits;
        let mag = (code as u32) & ((1 << self.sign_shift()) - 1);
        let efield = mag >> m;
        let mfield = mag & self.spec.man_mask();
        match self.spec.nan_encoding {
            NanEncoding::Ieee => efield == self.spec.exp_all_ones() && mfield != 0,
            NanEncoding::Extended => {
                efield == self.spec.exp_all_ones() && mfield == self.spec.man_mask()
            }
        }
    }

    /// True if `code` decodes to ±Inf.
    pub fn is_inf(&self, code: u8) -> bool {
        match self.spec.nan_encoding {
            NanEncoding::Ieee => {
                let m = self.spec.man_bits;
                let mag = (code as u32) & ((1 << self.sign_shift()) - 1);
                mag >> m == self.spec.exp_all_ones() && mag & self.spec.man_mask() == 0
            }
            NanEncoding::Extended => false,
        }
    }

    /// Encode a single `f32` into the format's bit pattern.
    ///
    /// NaN inputs map to the canonical NaN code; ±Inf follows the overflow
    /// policy (saturating codecs clamp infinities to ±max). Signed zero is
    /// preserved.
    pub fn encode(&self, x: f32) -> u8 {
        let spec = &self.spec;
        let m = spec.man_bits;
        if x.is_nan() {
            return self.nan_code();
        }
        let sign_bit = ((x.to_bits() >> 31) as u8) << self.sign_shift();
        let a = x.abs();
        if a == 0.0 {
            return sign_bit;
        }
        if x.is_infinite() {
            return sign_bit | self.overflow_code();
        }

        // Exact floor(log2(a)), handling f32 subnormal inputs by first
        // scaling them into the normal range (multiplication by a power of
        // two is exact).
        let bits = a.to_bits();
        let (a, e32) = if bits >> 23 == 0 {
            let scaled = a * 2f32.powi(64);
            (scaled, ((scaled.to_bits() >> 23) & 0xff) as i32 - 127 - 64)
        } else {
            (a, ((bits >> 23) & 0xff) as i32 - 127)
        };
        let min_e = spec.min_normal_exp();

        if e32 < min_e {
            // Subnormal region (or rounds down to zero): quantize to the
            // uniform grid of step 2^(min_e - m). Power-of-two division is
            // exact, and for e32 >= min_e - 64 the scaled value never
            // underflows f32 precision.
            let q = self.round_unit(scale_by_pow2(a, -(min_e - m as i32)));
            if q == 0 {
                return sign_bit; // underflow to signed zero
            }
            if q == 1u32 << m {
                // Rounded up into the smallest normal: exponent field 1.
                return sign_bit | (1u32 << m) as u8;
            }
            return sign_bit | q as u8;
        }

        // Normal region: frac = a / 2^e32 in [1, 2); scale mantissa to
        // [2^m, 2^(m+1)) and round. Both scalings are exact powers of two.
        let frac = scale_by_pow2(a, -e32);
        let mant = self.round_unit(frac * (1u32 << m) as f32);
        let (mut e, mut mant) = (e32, mant);
        if mant == 1u32 << (m + 1) {
            e += 1;
            mant = 1u32 << m;
        }

        let overflowed = match spec.nan_encoding {
            NanEncoding::Ieee => e > spec.max_exp(),
            NanEncoding::Extended => {
                e > spec.max_exp() || (e == spec.max_exp() && mant - (1u32 << m) == spec.man_mask())
            }
        };
        if overflowed {
            return sign_bit | self.overflow_code();
        }
        let efield = (e + spec.bias) as u32;
        sign_bit | ((efield << m) | (mant - (1u32 << m))) as u8
    }

    /// Decode a bit pattern into `f32`. Codes above the format's width have
    /// their unused high bits ignored (except the sign position).
    pub fn decode(&self, code: u8) -> f32 {
        let spec = &self.spec;
        let m = spec.man_bits;
        let sign = (code >> self.sign_shift()) & 1;
        let mag = (code as u32) & ((1u32 << self.sign_shift()) - 1);
        let efield = mag >> m;
        let mfield = mag & spec.man_mask();
        let v = if efield == spec.exp_all_ones() {
            match spec.nan_encoding {
                NanEncoding::Ieee => {
                    if mfield == 0 {
                        f32::INFINITY
                    } else {
                        f32::NAN
                    }
                }
                NanEncoding::Extended => {
                    if mfield == spec.man_mask() {
                        f32::NAN
                    } else {
                        let frac = 1.0 + mfield as f32 / (1u32 << m) as f32;
                        frac * ((efield as i32 - spec.bias) as f32).exp2()
                    }
                }
            }
        } else if efield == 0 {
            mfield as f32 * ((spec.min_normal_exp() - m as i32) as f32).exp2()
        } else {
            let frac = 1.0 + mfield as f32 / (1u32 << m) as f32;
            frac * ((efield as i32 - spec.bias) as f32).exp2()
        };
        if sign == 1 {
            -v
        } else {
            v
        }
    }

    /// Fake-quantize one value: `decode(encode(x))`. This is the fundamental
    /// operation of software-emulated FP8 inference.
    #[inline]
    pub fn quantize(&self, x: f32) -> f32 {
        self.decode(self.encode(x))
    }

    /// Enumerate every finite value the format can represent, as
    /// `(code, value)` pairs in code order (positive codes only).
    pub fn enumerate_finite_positive(&self) -> Vec<(u8, f32)> {
        let mut out = Vec::new();
        for mag in 0..(1u32 << self.sign_shift()) {
            let code = mag as u8;
            let v = self.decode(code);
            if v.is_finite() {
                out.push((code, v));
            }
        }
        out
    }

    /// The magnitude bit pattern produced on overflow under the configured
    /// policy (caller adds the sign bit).
    fn overflow_code(&self) -> u8 {
        match self.overflow {
            OverflowPolicy::Saturate => self.max_code(),
            OverflowPolicy::NonSaturating => match self.spec.nan_encoding {
                // IEEE formats always have an Inf code; extended formats
                // reclaim it, so overflow lands on the NaN pattern either
                // way if the lookup ever came back empty.
                NanEncoding::Ieee => self.inf_code().unwrap_or_else(|| self.nan_code()),
                NanEncoding::Extended => self.nan_code(),
            },
        }
    }

    /// Round a non-negative f32 to an integer according to the configured
    /// rounding mode. The input is always exactly representable (it is a
    /// power-of-two rescaling of the source value), so `round_ties_even`
    /// gives the correct RNE result.
    #[inline]
    fn round_unit(&self, q: f32) -> u32 {
        debug_assert!(q >= 0.0);
        match self.rounding {
            Rounding::NearestEven => q.round_ties_even() as u32,
            Rounding::TowardZero => q.trunc() as u32,
        }
    }
}

/// Exact `a * 2^d`. Multiplication by a power of two is exact in binary
/// floating point (only the exponent changes) as long as the intermediate
/// factor is itself representable; for extreme `d` the scaling is split in
/// two steps to keep each factor within f32 range.
#[inline]
fn scale_by_pow2(a: f32, d: i32) -> f32 {
    if (-126..=126).contains(&d) {
        a * (d as f32).exp2()
    } else {
        let h = d / 2;
        a * (h as f32).exp2() * ((d - h) as f32).exp2()
    }
}

#[cfg(test)]
#[allow(clippy::unusual_byte_groupings)] // literals grouped sign_exponent_mantissa
mod tests {
    use super::*;

    fn codec(f: Fp8Format) -> Fp8Codec {
        Fp8Codec::new(f)
    }

    #[test]
    fn exhaustive_roundtrip_all_formats() {
        // Every finite value must encode back to a code that decodes to the
        // same value (codec is idempotent on its own grid).
        for f in Fp8Format::ALL {
            let c = codec(f);
            for byte in 0u16..=255 {
                let code = byte as u8;
                let v = c.decode(code);
                if v.is_nan() {
                    assert!(c.is_nan(c.encode(v)), "{f} NaN roundtrip");
                    continue;
                }
                if v.is_infinite() {
                    continue; // saturating codec clamps Inf; covered below
                }
                let back = c.decode(c.encode(v));
                assert_eq!(back.to_bits(), v.to_bits(), "{f} code {code:#04x} v={v}");
            }
        }
    }

    #[test]
    fn encode_is_monotone_on_grid_midpoints() {
        for f in Fp8Format::ALL {
            let c = codec(f);
            let mut vals: Vec<f32> = c
                .enumerate_finite_positive()
                .into_iter()
                .map(|(_, v)| v)
                .filter(|v| *v >= 0.0)
                .collect();
            vals.sort_by(f32::total_cmp);
            vals.dedup();
            let mut prev = f32::NEG_INFINITY;
            for w in vals.windows(2) {
                let mid = 0.5 * (w[0] + w[1]);
                let q = c.quantize(mid);
                assert!(q >= prev, "{f} quantize not monotone at {mid}");
                assert!(q == w[0] || q == w[1], "{f} midpoint {mid} -> {q}");
                prev = q;
            }
        }
    }

    #[test]
    fn rne_ties_go_to_even() {
        // E4M3 around 1.0: grid step 1/8. 1.0625 is exactly halfway between
        // 1.0 (mantissa 000, even) and 1.125 (mantissa 001, odd) -> 1.0.
        let c = codec(Fp8Format::E4M3);
        assert_eq!(c.quantize(1.0625), 1.0);
        // 1.1875 halfway between 1.125 (odd) and 1.25 (even mantissa 010) -> 1.25.
        assert_eq!(c.quantize(1.1875), 1.25);
    }

    #[test]
    fn toward_zero_truncates() {
        let c = codec(Fp8Format::E4M3).with_rounding(Rounding::TowardZero);
        assert_eq!(c.quantize(1.24), 1.125);
        assert_eq!(c.quantize(-1.24), -1.125);
    }

    #[test]
    fn saturation_at_table1_max() {
        for f in Fp8Format::ALL {
            let c = codec(f);
            assert_eq!(c.quantize(1e30), f.max_value(), "{f}");
            assert_eq!(c.quantize(-1e30), -f.max_value(), "{f}");
            assert_eq!(c.quantize(f32::INFINITY), f.max_value(), "{f}");
        }
    }

    #[test]
    fn nonsaturating_overflow_e5m2_gives_inf() {
        let c = codec(Fp8Format::E5M2).with_overflow(OverflowPolicy::NonSaturating);
        let code = c.encode(1e30);
        assert!(c.is_inf(code));
        assert_eq!(c.decode(code), f32::INFINITY);
        let code = c.encode(-1e30);
        assert_eq!(c.decode(code), f32::NEG_INFINITY);
    }

    #[test]
    fn nonsaturating_overflow_extended_gives_nan() {
        for f in [Fp8Format::E4M3, Fp8Format::E3M4] {
            let c = codec(f).with_overflow(OverflowPolicy::NonSaturating);
            assert!(c.is_nan(c.encode(1e30)), "{f}");
        }
    }

    #[test]
    fn subnormals_and_underflow() {
        for f in Fp8Format::ALL {
            let c = codec(f);
            let sub = f.min_subnormal();
            assert_eq!(c.quantize(sub), sub, "{f} min subnormal exact");
            // Half the min subnormal is a tie between 0 and min_sub; RNE
            // picks the even mantissa (zero).
            assert_eq!(c.quantize(sub * 0.5), 0.0, "{f} tie to zero");
            // Slightly above half rounds up.
            assert_eq!(c.quantize(sub * 0.50001), sub, "{f}");
            // Deep underflow flushes to (signed) zero.
            assert_eq!(c.quantize(1e-30), 0.0);
            assert_eq!(c.quantize(-1e-30).to_bits(), (-0.0f32).to_bits());
        }
    }

    #[test]
    fn subnormal_rounds_up_to_min_normal() {
        let c = codec(Fp8Format::E3M4);
        let s = c.spec().min_normal(); // 0.25
                                       // Just below min normal, inside the subnormal grid's last step.
        let just_below = s - c.spec().min_subnormal() * 0.4;
        assert_eq!(c.quantize(just_below), s);
    }

    #[test]
    fn signed_zero_preserved() {
        for f in Fp8Format::ALL {
            let c = codec(f);
            assert_eq!(c.encode(0.0), 0);
            assert_eq!(c.decode(c.encode(-0.0)).to_bits(), (-0.0f32).to_bits());
        }
    }

    #[test]
    fn nan_codes_match_table1() {
        // E5M2 has a whole NaN family (IEEE); E4M3/E3M4 have the single
        // all-ones pattern.
        let c5 = codec(Fp8Format::E5M2);
        assert!(c5.is_nan(c5.nan_code()));
        assert!(c5.decode(c5.nan_code()).is_nan());
        assert_eq!(c5.inf_code(), Some(0b0_11111_00));

        let c4 = codec(Fp8Format::E4M3);
        assert_eq!(c4.nan_code(), 0b0_1111_111);
        assert_eq!(c4.inf_code(), None);
        assert!(c4.decode(0b0_1111_111).is_nan());
        assert!(c4.decode(0b1_1111_111u8).is_nan());
        // 0b0_1111_110 is the max value 448, not NaN.
        assert_eq!(c4.decode(0b0_1111_110), 448.0);

        let c3 = codec(Fp8Format::E3M4);
        assert_eq!(c3.nan_code(), 0b0_111_1111);
        assert_eq!(c3.decode(0b0_111_1110), 30.0);
    }

    #[test]
    fn e4m3_values_beyond_ieee_range() {
        // The extended encoding reclaims the top exponent: 256..448 exist.
        let c = codec(Fp8Format::E4M3);
        assert_eq!(c.quantize(256.0), 256.0);
        assert_eq!(c.quantize(416.0), 416.0);
        assert_eq!(c.quantize(448.0), 448.0);
    }

    #[test]
    fn quantization_error_bounded_by_half_ulp() {
        // For in-range values, |x - q(x)| <= ulp(x)/2 under RNE.
        for f in Fp8Format::ALL {
            let c = codec(f);
            let spec = *c.spec();
            let mut x = spec.min_subnormal() * 0.7;
            while x < f.max_value() {
                let q = c.quantize(x);
                let err = (x - q).abs();
                assert!(
                    err <= spec.ulp_at(x) * 0.5 + f32::EPSILON,
                    "{f}: x={x} q={q} err={err} ulp={}",
                    spec.ulp_at(x)
                );
                x *= 1.37;
            }
        }
    }

    #[test]
    fn max_code_decodes_to_max_value() {
        for f in Fp8Format::ALL {
            let c = codec(f);
            assert_eq!(c.decode(c.max_code()), f.max_value(), "{f}");
        }
    }

    #[test]
    fn finite_count_matches_enumeration() {
        for f in Fp8Format::ALL {
            let c = codec(f);
            let n = c.enumerate_finite_positive().len() as u32;
            // enumerate covers positive magnitudes including zero.
            assert_eq!(n, f.spec().finite_magnitude_count(), "{f}");
        }
    }

    #[test]
    fn generic_spec_e2m5() {
        // The related work mentions E2M5; exercise the generic path.
        let spec = FpSpec::new(2, 5, 1, NanEncoding::Extended);
        let c = Fp8Codec::from_spec(spec);
        let max = spec.max_value();
        assert_eq!(c.quantize(max), max);
        assert_eq!(c.quantize(max * 10.0), max);
        assert_eq!(c.quantize(1.0), 1.0);
    }
}
