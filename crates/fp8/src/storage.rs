//! Real quantized storage: FP8 tensors held as `u8` codes.
//!
//! The rest of the workspace uses *fake quantization* (quantize →
//! dequantize in f32), which is how the paper's emulation measures
//! accuracy. This module provides the storage format a deployment would
//! actually keep in memory: one byte per element plus per-tensor or
//! per-channel scales — the 4× memory reduction that motivates 8-bit
//! inference in the first place.

use crate::bytes::CodeBytes;
use crate::codec::Fp8Codec;
use crate::error::Fp8Error;
use crate::format::Fp8Format;
use crate::lut::Fp8Lut;
use crate::quantize::fp8_scale;
use serde::{Deserialize, Serialize};

/// Scale layout of a stored tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StoredScales {
    /// One scale for the whole tensor.
    PerTensor(f32),
    /// One scale per leading-axis channel (`shape[0]` entries).
    PerChannel(Vec<f32>),
}

impl StoredScales {
    /// Number of stored scale values.
    pub fn len(&self) -> usize {
        match self {
            StoredScales::PerTensor(_) => 1,
            StoredScales::PerChannel(v) => v.len(),
        }
    }

    /// Always false: even per-tensor storage carries one scale.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The scale applied to leading-axis channel `c`.
    ///
    /// Per-tensor storage returns the single scale for every channel;
    /// out-of-range per-channel lookups fall back to unit scale.
    #[inline]
    pub fn scale_for_channel(&self, c: usize) -> f32 {
        match self {
            StoredScales::PerTensor(s) => *s,
            StoredScales::PerChannel(v) => v.get(c).copied().unwrap_or(1.0),
        }
    }
}

/// Absmax that propagates NaN/Inf: any non-finite magnitude wins the fold
/// so that [`fp8_scale`] sees it and falls back to unit scale — the same
/// convention as the dynamic-activation path in `ptq-core` (PR 2).
#[inline]
pub fn absmax_nan_aware(data: &[f32]) -> f32 {
    data.iter().fold(0.0f32, |m, &v| {
        let a = v.abs();
        if a > m || !a.is_finite() {
            a
        } else {
            m
        }
    })
}

/// Error unless `data_len` equals the product of `shape`.
pub fn check_shape(data_len: usize, shape: &[usize]) -> Result<(), Fp8Error> {
    if data_len != shape.iter().product::<usize>() {
        return Err(Fp8Error::ShapeMismatch {
            data_len,
            shape: shape.to_vec(),
        });
    }
    Ok(())
}

/// An FP8 tensor stored as raw byte codes plus scales.
///
/// ```
/// # fn main() -> Result<(), ptq_fp8::Fp8Error> {
/// use ptq_fp8::{Fp8Format, StoredTensor};
/// let data = vec![0.5_f32, -1.25, 3.0, 0.0];
/// let st = StoredTensor::quantize(&data, &[4], Fp8Format::E4M3)?;
/// assert_eq!(st.bytes().len(), 4);                 // 1 byte/element
/// let back = st.dequantize();
/// assert!((back[1] + 1.25).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredTensor {
    format: Fp8Format,
    shape: Vec<usize>,
    codes: CodeBytes,
    scales: StoredScales,
}

impl StoredTensor {
    /// Quantize `data` (row-major, any shape) with a per-tensor max scale.
    ///
    /// A NaN/Inf absmax falls back to unit scale (non-finite values then
    /// round-trip through the codec's own NaN/saturation rules), matching
    /// the dynamic-quantization convention in `ptq-core`.
    ///
    /// # Errors
    ///
    /// Returns [`Fp8Error::ShapeMismatch`] if `data.len()` does not match
    /// the product of `shape`.
    pub fn quantize(data: &[f32], shape: &[usize], format: Fp8Format) -> Result<Self, Fp8Error> {
        check_shape(data.len(), shape)?;
        let codec = Fp8Codec::new(format);
        let scale = fp8_scale(format, absmax_nan_aware(data));
        let codes: Vec<u8> = data.iter().map(|&x| codec.encode(x * scale)).collect();
        Ok(StoredTensor {
            format,
            shape: shape.to_vec(),
            codes: codes.into(),
            scales: StoredScales::PerTensor(scale),
        })
    }

    /// Quantize with one scale per leading-axis channel (the paper's
    /// weight layout). Channels with NaN/Inf absmax fall back to unit
    /// scale, like [`StoredTensor::quantize`].
    ///
    /// # Errors
    ///
    /// Returns [`Fp8Error::ShapeMismatch`] on a shape/length mismatch,
    /// [`Fp8Error::ScalarShape`] for an empty shape, and
    /// [`Fp8Error::EmptyLeadingAxis`] when `shape[0] == 0`.
    pub fn quantize_per_channel(
        data: &[f32],
        shape: &[usize],
        format: Fp8Format,
    ) -> Result<Self, Fp8Error> {
        check_shape(data.len(), shape)?;
        let channels = *shape.first().ok_or(Fp8Error::ScalarShape)?;
        if channels == 0 {
            return Err(Fp8Error::EmptyLeadingAxis);
        }
        let inner = data.len() / channels;
        let codec = Fp8Codec::new(format);
        let mut codes = Vec::with_capacity(data.len());
        let mut scales = Vec::with_capacity(channels);
        for c in 0..channels {
            let chunk = &data[c * inner..(c + 1) * inner];
            let scale = fp8_scale(format, absmax_nan_aware(chunk));
            scales.push(scale);
            codes.extend(chunk.iter().map(|&x| codec.encode(x * scale)));
        }
        Ok(StoredTensor {
            format,
            shape: shape.to_vec(),
            codes: codes.into(),
            scales: StoredScales::PerChannel(scales),
        })
    }

    /// Reassemble a tensor from previously extracted parts (the
    /// deserialization path: artifact loaders hand in a zero-copy
    /// [`CodeBytes`] window plus the stored scales).
    ///
    /// Validates every invariant [`StoredTensor::quantize`] /
    /// [`StoredTensor::quantize_per_channel`] would have established:
    ///
    /// # Errors
    ///
    /// * [`Fp8Error::ShapeMismatch`] — `codes.len()` ≠ product of `shape`.
    /// * [`Fp8Error::ScalarShape`] / [`Fp8Error::EmptyLeadingAxis`] —
    ///   per-channel scales over a scalar or empty-leading-axis shape.
    /// * [`Fp8Error::ScaleCountMismatch`] — per-channel scale count ≠
    ///   `shape[0]`.
    pub fn from_raw_parts(
        format: Fp8Format,
        shape: Vec<usize>,
        codes: CodeBytes,
        scales: StoredScales,
    ) -> Result<Self, Fp8Error> {
        check_shape(codes.len(), &shape)?;
        if let StoredScales::PerChannel(s) = &scales {
            let channels = *shape.first().ok_or(Fp8Error::ScalarShape)?;
            if channels == 0 {
                return Err(Fp8Error::EmptyLeadingAxis);
            }
            if s.len() != channels {
                return Err(Fp8Error::ScaleCountMismatch {
                    expected: channels,
                    got: s.len(),
                });
            }
        }
        Ok(StoredTensor {
            format,
            shape,
            codes,
            scales,
        })
    }

    /// The storage format.
    pub fn format(&self) -> Fp8Format {
        self.format
    }

    /// The logical shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Raw byte codes (row-major).
    pub fn bytes(&self) -> &[u8] {
        &self.codes
    }

    /// The code buffer itself (owned or zero-copy shared).
    pub fn codes(&self) -> &CodeBytes {
        &self.codes
    }

    /// The stored scales.
    pub fn scales(&self) -> &StoredScales {
        &self.scales
    }

    /// Bytes of payload storage (codes + scales), for memory accounting.
    pub fn storage_bytes(&self) -> usize {
        self.codes.len() + 4 * self.scales.len()
    }

    /// Decode back to f32 via the shared cached [`Fp8Lut`] (bit-identical
    /// to the scalar codec; see `lut_equivalence` tests).
    pub fn dequantize(&self) -> Vec<f32> {
        let lut = Fp8Lut::for_spec(self.format.spec());
        // Divide by the scale (rather than multiplying by a precomputed
        // reciprocal) so results are bit-identical to fake quantization.
        match &self.scales {
            StoredScales::PerTensor(s) => self.codes.iter().map(|&b| lut.decode(b) / s).collect(),
            StoredScales::PerChannel(scales) => {
                let channels = scales.len();
                let inner = self.codes.len() / channels.max(1);
                let mut out = Vec::with_capacity(self.codes.len());
                for (c, &s) in scales.iter().enumerate() {
                    out.extend(
                        self.codes[c * inner..(c + 1) * inner]
                            .iter()
                            .map(|&b| lut.decode(b) / s),
                    );
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::fake_quant_fp8;

    #[test]
    fn roundtrip_matches_fake_quant() {
        // Real storage must reproduce exactly what fake quantization
        // computes: decode(encode(x*s))/s.
        let data: Vec<f32> = (0..64).map(|i| (i as f32 - 31.5) * 0.13).collect();
        for f in Fp8Format::ALL {
            let st = StoredTensor::quantize(&data, &[64], f).unwrap();
            let real = st.dequantize();
            let mut fake = data.clone();
            let codec = Fp8Codec::new(f);
            let absmax = data.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            fake_quant_fp8(&mut fake, &codec, fp8_scale(f, absmax));
            for (a, b) in real.iter().zip(&fake) {
                assert_eq!(a.to_bits(), b.to_bits(), "{f}");
            }
        }
    }

    #[test]
    fn per_channel_roundtrip() {
        let mut data = vec![0.0f32; 32];
        for (i, v) in data.iter_mut().enumerate() {
            *v = if i < 16 { 0.01 } else { 10.0 } * ((i % 7) as f32 - 3.0);
        }
        let st = StoredTensor::quantize_per_channel(&data, &[2, 16], Fp8Format::E3M4).unwrap();
        let back = st.dequantize();
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() <= a.abs() * 0.05 + 1e-6, "{a} vs {b}");
        }
        match st.scales() {
            StoredScales::PerChannel(s) => assert_eq!(s.len(), 2),
            _ => panic!("expected per-channel scales"),
        }
    }

    #[test]
    fn storage_is_4x_smaller_than_f32() {
        let data = vec![1.0f32; 1024];
        let st = StoredTensor::quantize(&data, &[1024], Fp8Format::E4M3).unwrap();
        assert_eq!(st.storage_bytes(), 1024 + 4);
        assert!(st.storage_bytes() * 3 < data.len() * 4);
    }

    #[test]
    fn zero_tensor() {
        let st = StoredTensor::quantize(&[0.0; 8], &[8], Fp8Format::E5M2).unwrap();
        assert!(st.dequantize().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn shape_checked() {
        let err = StoredTensor::quantize(&[0.0; 8], &[3, 3], Fp8Format::E4M3).unwrap_err();
        assert!(matches!(err, Fp8Error::ShapeMismatch { data_len: 8, .. }));
        assert!(err.to_string().contains("shape/product mismatch"));
    }

    #[test]
    fn per_channel_rejects_degenerate_shapes() {
        assert_eq!(
            StoredTensor::quantize_per_channel(&[0.0], &[], Fp8Format::E4M3).unwrap_err(),
            Fp8Error::ScalarShape
        );
        assert_eq!(
            StoredTensor::quantize_per_channel(&[], &[0, 4], Fp8Format::E4M3).unwrap_err(),
            Fp8Error::EmptyLeadingAxis
        );
    }

    #[test]
    fn raw_parts_roundtrip_is_identity() {
        let data: Vec<f32> = (0..24).map(|i| (i as f32) * 0.37 - 4.0).collect();
        let st = StoredTensor::quantize_per_channel(&data, &[4, 6], Fp8Format::E4M3).unwrap();
        let rebuilt = StoredTensor::from_raw_parts(
            st.format(),
            st.shape().to_vec(),
            st.codes().clone(),
            st.scales().clone(),
        )
        .unwrap();
        assert_eq!(st, rebuilt);
    }

    #[test]
    fn raw_parts_validates_invariants() {
        let codes = CodeBytes::from(vec![0u8; 6]);
        let pt = StoredScales::PerTensor(1.0);
        assert!(matches!(
            StoredTensor::from_raw_parts(Fp8Format::E4M3, vec![7], codes.clone(), pt.clone())
                .unwrap_err(),
            Fp8Error::ShapeMismatch { data_len: 6, .. }
        ));
        let pc = StoredScales::PerChannel(vec![1.0, 2.0, 3.0]);
        assert_eq!(
            StoredTensor::from_raw_parts(Fp8Format::E4M3, vec![2, 3], codes.clone(), pc.clone())
                .unwrap_err(),
            Fp8Error::ScaleCountMismatch {
                expected: 2,
                got: 3
            }
        );
        assert_eq!(
            StoredTensor::from_raw_parts(
                Fp8Format::E4M3,
                vec![],
                CodeBytes::from(vec![0u8]),
                pc.clone()
            )
            .unwrap_err(),
            Fp8Error::ScalarShape
        );
        assert_eq!(
            StoredTensor::from_raw_parts(Fp8Format::E4M3, vec![0, 3], CodeBytes::from(vec![]), pc)
                .unwrap_err(),
            Fp8Error::EmptyLeadingAxis
        );
        // Per-tensor scales over a valid shape are fine.
        assert!(StoredTensor::from_raw_parts(Fp8Format::E4M3, vec![2, 3], codes, pt).is_ok());
    }

    #[test]
    fn non_finite_absmax_falls_back_to_unit_scale() {
        // Same convention as the PR 2 dynamic-quant fix: a NaN/Inf absmax
        // must not poison the scale.
        let data = [1.0f32, f32::NAN, -2.0, f32::INFINITY];
        let st = StoredTensor::quantize(&data, &[4], Fp8Format::E4M3).unwrap();
        assert_eq!(*st.scales(), StoredScales::PerTensor(1.0));
        let st = StoredTensor::quantize_per_channel(&data, &[2, 2], Fp8Format::E4M3).unwrap();
        match st.scales() {
            StoredScales::PerChannel(s) => {
                assert_eq!(s[0], 1.0, "NaN channel");
                assert_eq!(s[1], 1.0, "Inf channel");
            }
            _ => panic!("expected per-channel scales"),
        }
    }
}
