//! Real quantized storage: FP8 tensors held as `u8` codes.
//!
//! The rest of the workspace uses *fake quantization* (quantize →
//! dequantize in f32), which is how the paper's emulation measures
//! accuracy. This module provides the storage format a deployment would
//! actually keep in memory: one byte per element plus per-tensor or
//! per-channel scales — the 4× memory reduction that motivates 8-bit
//! inference in the first place.

use crate::codec::Fp8Codec;
use crate::format::Fp8Format;
use crate::quantize::fp8_scale;
use serde::{Deserialize, Serialize};

/// Scale layout of a stored tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StoredScales {
    /// One scale for the whole tensor.
    PerTensor(f32),
    /// One scale per leading-axis channel (`shape[0]` entries).
    PerChannel(Vec<f32>),
}

/// An FP8 tensor stored as raw byte codes plus scales.
///
/// ```
/// use ptq_fp8::{Fp8Format, StoredTensor};
/// let data = vec![0.5_f32, -1.25, 3.0, 0.0];
/// let st = StoredTensor::quantize(&data, &[4], Fp8Format::E4M3);
/// assert_eq!(st.bytes().len(), 4);                 // 1 byte/element
/// let back = st.dequantize();
/// assert!((back[1] + 1.25).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredTensor {
    format: Fp8Format,
    shape: Vec<usize>,
    codes: Vec<u8>,
    scales: StoredScales,
}

impl StoredTensor {
    /// Quantize `data` (row-major, any shape) with a per-tensor max scale.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn quantize(data: &[f32], shape: &[usize], format: Fp8Format) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "shape/product mismatch"
        );
        let codec = Fp8Codec::new(format);
        let absmax = data.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let scale = fp8_scale(format, absmax);
        let codes = data.iter().map(|&x| codec.encode(x * scale)).collect();
        StoredTensor {
            format,
            shape: shape.to_vec(),
            codes,
            scales: StoredScales::PerTensor(scale),
        }
    }

    /// Quantize with one scale per leading-axis channel (the paper's
    /// weight layout).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or an empty leading axis.
    pub fn quantize_per_channel(data: &[f32], shape: &[usize], format: Fp8Format) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "shape/product mismatch"
        );
        let channels = *shape.first().expect("non-scalar shape");
        assert!(channels > 0, "empty leading axis");
        let inner = data.len() / channels;
        let codec = Fp8Codec::new(format);
        let mut codes = Vec::with_capacity(data.len());
        let mut scales = Vec::with_capacity(channels);
        for c in 0..channels {
            let chunk = &data[c * inner..(c + 1) * inner];
            let absmax = chunk.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let scale = fp8_scale(format, absmax);
            scales.push(scale);
            codes.extend(chunk.iter().map(|&x| codec.encode(x * scale)));
        }
        StoredTensor {
            format,
            shape: shape.to_vec(),
            codes,
            scales: StoredScales::PerChannel(scales),
        }
    }

    /// The storage format.
    pub fn format(&self) -> Fp8Format {
        self.format
    }

    /// The logical shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Raw byte codes (row-major).
    pub fn bytes(&self) -> &[u8] {
        &self.codes
    }

    /// The stored scales.
    pub fn scales(&self) -> &StoredScales {
        &self.scales
    }

    /// Bytes of payload storage (codes + scales), for memory accounting.
    pub fn storage_bytes(&self) -> usize {
        let scale_bytes = match &self.scales {
            StoredScales::PerTensor(_) => 4,
            StoredScales::PerChannel(v) => 4 * v.len(),
        };
        self.codes.len() + scale_bytes
    }

    /// Decode back to f32 using a 256-entry lookup table (one table per
    /// call; decoding is memory-bound, not compute-bound).
    pub fn dequantize(&self) -> Vec<f32> {
        let codec = Fp8Codec::new(self.format);
        let mut lut = [0.0f32; 256];
        for (b, slot) in lut.iter_mut().enumerate() {
            *slot = codec.decode(b as u8);
        }
        // Divide by the scale (rather than multiplying by a precomputed
        // reciprocal) so results are bit-identical to fake quantization.
        match &self.scales {
            StoredScales::PerTensor(s) => self.codes.iter().map(|&b| lut[b as usize] / s).collect(),
            StoredScales::PerChannel(scales) => {
                let channels = scales.len();
                let inner = self.codes.len() / channels.max(1);
                let mut out = Vec::with_capacity(self.codes.len());
                for (c, &s) in scales.iter().enumerate() {
                    out.extend(
                        self.codes[c * inner..(c + 1) * inner]
                            .iter()
                            .map(|&b| lut[b as usize] / s),
                    );
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::fake_quant_fp8;

    #[test]
    fn roundtrip_matches_fake_quant() {
        // Real storage must reproduce exactly what fake quantization
        // computes: decode(encode(x*s))/s.
        let data: Vec<f32> = (0..64).map(|i| (i as f32 - 31.5) * 0.13).collect();
        for f in Fp8Format::ALL {
            let st = StoredTensor::quantize(&data, &[64], f);
            let real = st.dequantize();
            let mut fake = data.clone();
            let codec = Fp8Codec::new(f);
            let absmax = data.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            fake_quant_fp8(&mut fake, &codec, fp8_scale(f, absmax));
            for (a, b) in real.iter().zip(&fake) {
                assert_eq!(a.to_bits(), b.to_bits(), "{f}");
            }
        }
    }

    #[test]
    fn per_channel_roundtrip() {
        let mut data = vec![0.0f32; 32];
        for (i, v) in data.iter_mut().enumerate() {
            *v = if i < 16 { 0.01 } else { 10.0 } * ((i % 7) as f32 - 3.0);
        }
        let st = StoredTensor::quantize_per_channel(&data, &[2, 16], Fp8Format::E3M4);
        let back = st.dequantize();
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() <= a.abs() * 0.05 + 1e-6, "{a} vs {b}");
        }
        match st.scales() {
            StoredScales::PerChannel(s) => assert_eq!(s.len(), 2),
            _ => panic!("expected per-channel scales"),
        }
    }

    #[test]
    fn storage_is_4x_smaller_than_f32() {
        let data = vec![1.0f32; 1024];
        let st = StoredTensor::quantize(&data, &[1024], Fp8Format::E4M3);
        assert_eq!(st.storage_bytes(), 1024 + 4);
        assert!(st.storage_bytes() * 3 < data.len() * 4);
    }

    #[test]
    fn zero_tensor() {
        let st = StoredTensor::quantize(&[0.0; 8], &[8], Fp8Format::E5M2);
        assert!(st.dequantize().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "shape/product mismatch")]
    fn shape_checked() {
        StoredTensor::quantize(&[0.0; 8], &[3, 3], Fp8Format::E4M3);
    }
}
