//! Grid-density analysis from Appendix A.1 of the paper.
//!
//! For a format `E(e)M(m)`, the number of representable values per unit
//! interval around a magnitude `N` is
//!
//! ```text
//! D_{E(e)M(m)}(N) = 2^(m - floor(log2 N))        (paper Eq. 2)
//! ```
//!
//! i.e. density halves every octave: FP8 formats concentrate their codes
//! near zero, which is why clipping-based calibration (KL, percentile) that
//! helps INT8 can *hurt* FP8 (Figure 9).

/// Density of representable values (codes per unit interval) of an `EeMm`
/// format at magnitude `n`, per Eq. 2 of the paper's appendix.
///
/// Returns `None` for non-positive or non-finite `n` (the formula's
/// `log2` is undefined there).
pub fn density_at(man_bits: u32, n: f32) -> Option<f64> {
    if n.is_nan() || n <= 0.0 || n.is_infinite() {
        return None;
    }
    let floor_log2 = n.log2().floor() as i32;
    Some(2f64.powi(man_bits as i32 - floor_log2))
}

/// Number of grid points of an `EeMm` format inside the binade
/// `[2^k, 2^(k+1))` — always `2^m` for normal binades (the derivation step
/// behind Eq. 1).
pub fn grid_points_in(man_bits: u32) -> u32 {
    1u32 << man_bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fp8Codec, Fp8Format};

    #[test]
    fn density_halves_per_octave() {
        // Eq. 2: doubling N halves the density.
        let d1 = density_at(3, 1.0).unwrap();
        let d2 = density_at(3, 2.0).unwrap();
        let d4 = density_at(3, 4.0).unwrap();
        assert_eq!(d1, 2.0 * d2);
        assert_eq!(d2, 2.0 * d4);
    }

    #[test]
    fn density_grows_with_mantissa() {
        // "the more the mantissa the denser the representation"
        for n in [0.1f32, 1.0, 3.7, 16.0] {
            let d2 = density_at(2, n).unwrap();
            let d3 = density_at(3, n).unwrap();
            let d4 = density_at(4, n).unwrap();
            assert!(d2 < d3 && d3 < d4);
        }
    }

    #[test]
    fn density_matches_actual_grid() {
        // Count actual representable values of E4M3 in [1, 2): must equal
        // 2^m, and the implied density 2^m / (2-1) must match Eq. 2.
        let c = Fp8Codec::new(Fp8Format::E4M3);
        let count = c
            .enumerate_finite_positive()
            .into_iter()
            .filter(|&(_, v)| (1.0..2.0).contains(&v))
            .count() as u32;
        assert_eq!(count, grid_points_in(3));
        assert_eq!(density_at(3, 1.5).unwrap(), count as f64);
    }

    #[test]
    fn density_in_binade_constant() {
        // floor(log2 N) is constant within a binade.
        assert_eq!(density_at(4, 4.01), density_at(4, 7.99));
        assert_ne!(density_at(4, 3.99), density_at(4, 4.01));
    }

    #[test]
    fn density_rejects_nonpositive() {
        assert!(density_at(3, 0.0).is_none());
        assert!(density_at(3, -1.0).is_none());
        assert!(density_at(3, f32::NAN).is_none());
        assert!(density_at(3, f32::INFINITY).is_none());
    }
}
