//! Table-driven FP8 fake quantization.
//!
//! The scalar [`Fp8Codec`](crate::Fp8Codec) round-trips every value through
//! encode/decode: exponent extraction, subnormal rescaling, RNE rounding and
//! overflow handling — a long dependent chain per element. But an 8-bit
//! format only has ≤128 distinct non-negative representable magnitudes, so
//! the whole quantization function of a *fixed* codec is a step function of
//! the input's magnitude. This module precomputes that step function once:
//!
//! * a 256-entry **decode table** (`decode(code)` for every code), and
//! * a monotone **breakpoint table**: for each representable magnitude, the
//!   largest `f32` (as a raw bit pattern) that still rounds to it under the
//!   codec's round-to-nearest-even rule.
//!
//! Quantizing is then a branchless 7-step lower-bound search over the
//! padded 128-entry breakpoint table plus one table load — no exponent
//! manipulation, no rounding, no overflow branches.
//!
//! Breakpoints are derived *empirically* from the scalar codec by binary
//! search over the positive `f32` bit space (quantization is monotone in
//! the magnitude bits), so the table is bit-identical to the scalar codec
//! for **every** `f32` input by construction — rounding-boundary ties,
//! subnormals, saturation and signed zero included. The scalar codec stays
//! as the executable reference; the equivalence is enforced exhaustively in
//! `tests/lut_equivalence.rs`.
//!
//! Tables are built lazily and cached per [`FpSpec`] for the lifetime of
//! the process (they are a few hundred bytes each and there are only a
//! handful of specs in use).
//!
//! The fast path only models the default policy pair (saturating overflow +
//! round-to-nearest-even) — the one used everywhere in the paper's recipes.
//! [`Fp8Lut::for_codec`] returns `None` for any other codec configuration,
//! and callers fall back to the scalar path.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};

use crate::codec::{Fp8Codec, OverflowPolicy, Rounding};
use crate::format::FpSpec;

/// Bit pattern of +Inf; the upper end of the positive magnitude bit space
/// the breakpoint search runs over.
const INF_BITS: u32 = 0x7F80_0000;

/// Precomputed quantization tables for one codec configuration.
///
/// ```
/// use ptq_fp8::{Fp8Codec, Fp8Format, Fp8Lut};
/// let codec = Fp8Codec::new(Fp8Format::E4M3);
/// let lut = Fp8Lut::for_spec(Fp8Format::E4M3.spec());
/// assert_eq!(lut.quantize(1.3), codec.quantize(1.3));
/// assert_eq!(lut.quantize(1e9), 448.0); // saturates like the codec
/// ```
#[derive(Debug)]
pub struct Fp8Lut {
    spec: FpSpec,
    /// `decode[code]` = the codec's decode of every possible byte.
    decode: [f32; 256],
    /// Quantized magnitude for breakpoint interval `i`; entries past the
    /// last real interval repeat the max value so the search can never
    /// index junk.
    values: [f32; 128],
    /// `upper_bits[i]` = largest positive-`f32` bit pattern that still
    /// quantizes to `values[i]`; padded with `u32::MAX`.
    upper_bits: [u32; 128],
    /// Number of distinct non-negative representable magnitudes.
    n: usize,
}

/// Process-wide table cache, keyed by spec (policies are fixed to the
/// defaults by construction).
static LUT_CACHE: OnceLock<Mutex<HashMap<FpSpec, &'static Fp8Lut>>> = OnceLock::new();

impl Fp8Lut {
    /// The cached table for `codec`, building it on first use.
    ///
    /// Returns `None` when the codec uses a non-default overflow or
    /// rounding policy; such codecs must use the scalar path.
    pub fn for_codec(codec: &Fp8Codec) -> Option<&'static Fp8Lut> {
        if codec.overflow() != OverflowPolicy::Saturate || codec.rounding() != Rounding::NearestEven
        {
            return None;
        }
        Some(Self::for_spec(*codec.spec()))
    }

    /// The cached table for `spec` under the default policies, building it
    /// on first use.
    pub fn for_spec(spec: FpSpec) -> &'static Fp8Lut {
        let cache = LUT_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        // The map only ever grows with leaked 'static entries, so a
        // poisoned lock still holds a consistent map — recover it.
        let mut map = cache.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(lut) = map.get(&spec) {
            return lut;
        }
        let lut: &'static Fp8Lut = Box::leak(Box::new(Self::build(spec)));
        map.insert(spec, lut);
        lut
    }

    /// Derive the tables from the scalar codec.
    fn build(spec: FpSpec) -> Fp8Lut {
        let codec = Fp8Codec::from_spec(spec);
        let grid = codec.enumerate_finite_positive();
        let n = grid.len();
        assert!(
            (2..=128).contains(&n),
            "8-bit format must have 2..=128 non-negative magnitudes, got {n}"
        );

        let mut decode = [0.0f32; 256];
        for (code, slot) in decode.iter_mut().enumerate() {
            *slot = codec.decode(code as u8);
        }

        let max_v = grid[n - 1].1;
        let mut values = [max_v; 128];
        for (i, &(_, v)) in grid.iter().enumerate() {
            values[i] = v;
        }

        // Breakpoints: the codec's quantize is monotone non-decreasing in
        // the positive magnitude bits, so the first bit pattern reaching
        // grid value i+1 is found by binary search against the scalar
        // reference; everything below it (and above the previous
        // breakpoint) rounds to grid value i. This bakes the exact RNE
        // tie behaviour into the table without re-deriving it.
        let mut upper_bits = [u32::MAX; 128];
        for i in 0..n - 1 {
            let target = grid[i + 1].1.to_bits();
            let (mut lo, mut hi) = (0u32, INF_BITS);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if codec.quantize(f32::from_bits(mid)).to_bits() >= target {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            debug_assert!(lo > 0, "breakpoint search degenerated");
            upper_bits[i] = lo - 1;
        }

        Fp8Lut {
            spec,
            decode,
            values,
            upper_bits,
            n,
        }
    }

    /// The spec these tables were built for.
    pub fn spec(&self) -> &FpSpec {
        &self.spec
    }

    /// Number of distinct non-negative representable magnitudes.
    pub fn grid_len(&self) -> usize {
        self.n
    }

    /// Table-driven decode of a code byte (bit-identical to the scalar
    /// codec's `decode`).
    #[inline]
    pub fn decode(&self, code: u8) -> f32 {
        self.decode[code as usize]
    }

    /// Table-driven fake quantization: bit-identical to
    /// `codec.quantize(x)` for every `f32` including NaN, ±Inf,
    /// signed zero and RNE ties.
    #[inline]
    pub fn quantize(&self, x: f32) -> f32 {
        if x.is_nan() {
            // The scalar codec canonicalizes every NaN (sign included).
            return f32::NAN;
        }
        let bits = x.to_bits();
        let mag = bits & 0x7FFF_FFFF;
        // Branchless lower bound over the padded power-of-two table: find
        // the first interval whose upper breakpoint covers `mag`.
        let mut pos = 0usize;
        let mut half = 64usize;
        while half > 0 {
            pos += usize::from(self.upper_bits[pos + half - 1] < mag) * half;
            half >>= 1;
        }
        let v = self.values[pos];
        f32::from_bits(v.to_bits() | (bits & 0x8000_0000))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Fp8Format;

    #[test]
    fn cache_returns_same_instance() {
        let a = Fp8Lut::for_spec(Fp8Format::E4M3.spec());
        let b = Fp8Lut::for_spec(Fp8Format::E4M3.spec());
        assert!(std::ptr::eq(a, b));
        let c = Fp8Lut::for_spec(Fp8Format::E5M2.spec());
        assert!(!std::ptr::eq(a, c));
    }

    #[test]
    fn non_default_policies_have_no_lut() {
        let toward_zero = Fp8Codec::new(Fp8Format::E4M3).with_rounding(Rounding::TowardZero);
        assert!(Fp8Lut::for_codec(&toward_zero).is_none());
        let non_sat = Fp8Codec::new(Fp8Format::E5M2).with_overflow(OverflowPolicy::NonSaturating);
        assert!(Fp8Lut::for_codec(&non_sat).is_none());
        let default = Fp8Codec::new(Fp8Format::E3M4);
        assert!(Fp8Lut::for_codec(&default).is_some());
    }

    #[test]
    fn grid_len_matches_format() {
        for f in Fp8Format::ALL {
            let lut = Fp8Lut::for_spec(f.spec());
            assert_eq!(lut.grid_len() as u32, f.spec().finite_magnitude_count());
        }
    }

    #[test]
    fn breakpoints_strictly_increase() {
        for f in Fp8Format::ALL {
            let lut = Fp8Lut::for_spec(f.spec());
            for i in 1..lut.n - 1 {
                assert!(
                    lut.upper_bits[i - 1] < lut.upper_bits[i],
                    "{f} breakpoint {i}"
                );
            }
        }
    }

    #[test]
    fn quantize_matches_scalar_on_special_values() {
        for f in Fp8Format::ALL {
            let codec = Fp8Codec::new(f);
            let lut = Fp8Lut::for_codec(&codec).unwrap();
            for x in [
                0.0f32,
                -0.0,
                f32::INFINITY,
                f32::NEG_INFINITY,
                f32::MIN_POSITIVE,
                -f32::MIN_POSITIVE,
                f32::from_bits(1), // smallest positive subnormal f32
                f32::MAX,
                f32::MIN,
                1.0,
                -1.0,
            ] {
                assert_eq!(
                    lut.quantize(x).to_bits(),
                    codec.quantize(x).to_bits(),
                    "{f} x={x:?}"
                );
            }
            assert!(lut.quantize(f32::NAN).is_nan());
            assert_eq!(
                lut.quantize(f32::NAN).to_bits(),
                codec.quantize(f32::NAN).to_bits()
            );
        }
    }

    #[test]
    fn decode_table_matches_scalar() {
        for f in Fp8Format::ALL {
            let codec = Fp8Codec::new(f);
            let lut = Fp8Lut::for_codec(&codec).unwrap();
            for code in 0u16..=255 {
                let a = lut.decode(code as u8);
                let b = codec.decode(code as u8);
                assert!(
                    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                    "{f} code {code:#04x}"
                );
            }
        }
    }
}
