//! Property-based tests for the FP8 and INT8 codecs.

use proptest::prelude::*;
use ptq_fp8::{fake_quant_fp8, fp8_scale, Fp8Codec, Fp8Format, Int8Codec, Int8Mode};

fn any_format() -> impl Strategy<Value = Fp8Format> {
    prop_oneof![
        Just(Fp8Format::E5M2),
        Just(Fp8Format::E4M3),
        Just(Fp8Format::E3M4),
    ]
}

proptest! {
    /// Quantization is idempotent: q(q(x)) == q(x).
    #[test]
    fn quantize_idempotent(f in any_format(), x in -1e6f32..1e6f32) {
        let c = Fp8Codec::new(f);
        let q = c.quantize(x);
        prop_assert_eq!(c.quantize(q).to_bits(), q.to_bits());
    }

    /// Quantized output is always a representable finite value bounded by
    /// the format max (saturating codec).
    #[test]
    fn quantize_bounded(f in any_format(), x in proptest::num::f32::NORMAL) {
        let c = Fp8Codec::new(f);
        let q = c.quantize(x);
        prop_assert!(q.is_finite());
        prop_assert!(q.abs() <= f.max_value());
    }

    /// Sign symmetry: q(-x) == -q(x).
    #[test]
    fn quantize_odd_symmetry(f in any_format(), x in -1e6f32..1e6f32) {
        let c = Fp8Codec::new(f);
        prop_assert_eq!(c.quantize(-x).to_bits(), (-c.quantize(x)).to_bits());
    }

    /// Monotonicity: x <= y implies q(x) <= q(y).
    #[test]
    fn quantize_monotone(f in any_format(), a in -1e5f32..1e5f32, b in -1e5f32..1e5f32) {
        let c = Fp8Codec::new(f);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(c.quantize(lo) <= c.quantize(hi));
    }

    /// RNE error bound: |x - q(x)| <= ulp(x)/2 for in-range values.
    #[test]
    fn quantize_half_ulp_bound(f in any_format(), x in -1e4f32..1e4f32) {
        let c = Fp8Codec::new(f);
        prop_assume!(x.abs() <= f.max_value());
        let q = c.quantize(x);
        let ulp = c.spec().ulp_at(x);
        prop_assert!((x - q).abs() <= 0.5 * ulp * (1.0 + 1e-6));
    }

    /// Encode of a decoded finite code returns a code with the same value.
    #[test]
    fn decode_encode_value_stable(f in any_format(), byte in 0u8..=255) {
        let c = Fp8Codec::new(f);
        let v = c.decode(byte);
        prop_assume!(v.is_finite());
        prop_assert_eq!(c.decode(c.encode(v)).to_bits(), v.to_bits());
    }

    /// With the paper's scale rule, the scaled absmax hits float_max exactly
    /// and nothing saturates.
    #[test]
    fn paper_scale_no_saturation(f in any_format(), mut data in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
        let absmax = data.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        prop_assume!(absmax > 1e-3);
        let c = Fp8Codec::new(f);
        let s = fp8_scale(f, absmax);
        let st = fake_quant_fp8(&mut data, &c, s);
        prop_assert_eq!(st.saturated, 0);
        for &x in &data {
            prop_assert!(x.abs() <= absmax * (1.0 + 1e-5));
        }
    }

    /// INT8 symmetric: error bounded by half a step for in-range values.
    #[test]
    fn int8_error_bound(x in -10.0f32..10.0, absmax in 0.1f32..100.0) {
        let c = Int8Codec::from_range(-absmax, absmax, Int8Mode::Symmetric);
        prop_assume!(x.abs() <= absmax);
        prop_assert!((c.quantize(x) - x).abs() <= 0.5 * c.scale() + 1e-6);
    }

    /// INT8 asymmetric roundtrip stays within range and one step of input.
    #[test]
    fn int8_asymmetric_bound(lo in -50.0f32..0.0, hi in 0.1f32..50.0, t in 0.0f32..1.0) {
        let c = Int8Codec::from_range(lo, hi, Int8Mode::Asymmetric);
        let x = lo + t * (hi - lo);
        prop_assert!((c.quantize(x) - x).abs() <= 0.5 * c.scale() + 1e-5);
    }
}
