//! StoredTensor ⇔ fake-quantization equivalence suite.
//!
//! Real FP8 storage (`StoredTensor`: u8 codes + scales) must round-trip to
//! exactly the values fake quantization computes in f32 — that identity is
//! what lets the fused execution kernels replace the fake-quant path
//! bit-for-bit. These tests enforce `quantize → dequantize` ==
//! `fake_quant_fp8_lut` / `_per_channel_lut` across all three formats,
//! deterministically on the known hard cases and probabilistically over
//! random tensors.

use proptest::prelude::*;
use ptq_fp8::{
    fake_quant_fp8_lut, fake_quant_fp8_per_channel_lut, Fp8Codec, Fp8Format, StoredScales,
    StoredTensor,
};

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Per-tensor storage round-trip vs the LUT fake-quant reference.
fn assert_per_tensor_identical(data: &[f32], shape: &[usize], f: Fp8Format) {
    let st = StoredTensor::quantize(data, shape, f).unwrap();
    let codec = Fp8Codec::new(f);
    let mut fake = data.to_vec();
    let scale = match st.scales() {
        StoredScales::PerTensor(s) => *s,
        _ => panic!("expected per-tensor scales"),
    };
    fake_quant_fp8_lut(&mut fake, &codec, scale);
    assert_eq!(bits(&st.dequantize()), bits(&fake), "{f} {shape:?}");
}

/// Per-channel storage round-trip vs the LUT fake-quant reference; also
/// checks the stored scales match the fake-quant scales bit-for-bit.
fn assert_per_channel_identical(data: &[f32], channels: usize, inner: usize, f: Fp8Format) {
    let st = StoredTensor::quantize_per_channel(data, &[channels, inner], f).unwrap();
    let codec = Fp8Codec::new(f);
    let mut fake = data.to_vec();
    let (fake_scales, _) = fake_quant_fp8_per_channel_lut(&mut fake, &codec, channels, inner);
    match st.scales() {
        StoredScales::PerChannel(s) => assert_eq!(bits(s), bits(&fake_scales), "{f} scales"),
        _ => panic!("expected per-channel scales"),
    }
    assert_eq!(
        bits(&st.dequantize()),
        bits(&fake),
        "{f} [{channels},{inner}]"
    );
}

#[test]
fn empty_tensor_roundtrips() {
    for f in Fp8Format::ALL {
        assert_per_tensor_identical(&[], &[0], f);
        let st = StoredTensor::quantize(&[], &[0, 3], f).unwrap();
        assert!(st.bytes().is_empty());
        assert!(st.dequantize().is_empty());
    }
}

#[test]
fn single_channel_matches_per_tensor_layout() {
    let data: Vec<f32> = (0..32).map(|i| (i as f32 - 15.5) * 0.21).collect();
    for f in Fp8Format::ALL {
        assert_per_channel_identical(&data, 1, 32, f);
        // One channel over the whole tensor must agree elementwise with
        // the per-tensor path (same absmax → same scale).
        let pc = StoredTensor::quantize_per_channel(&data, &[1, 32], f).unwrap();
        let pt = StoredTensor::quantize(&data, &[1, 32], f).unwrap();
        assert_eq!(bits(&pc.dequantize()), bits(&pt.dequantize()), "{f}");
    }
}

#[test]
fn all_zero_channel_passthrough() {
    // One dead channel, one live channel: the dead channel must keep unit
    // scale and decode back to exact zeros.
    let mut data = vec![0.0f32; 16];
    data.extend((0..16).map(|i| (i as f32 - 7.5) * 0.4));
    for f in Fp8Format::ALL {
        assert_per_channel_identical(&data, 2, 16, f);
        let st = StoredTensor::quantize_per_channel(&data, &[2, 16], f).unwrap();
        match st.scales() {
            StoredScales::PerChannel(s) => assert_eq!(s[0], 1.0, "{f} dead channel scale"),
            _ => panic!("expected per-channel scales"),
        }
        assert!(st.dequantize()[..16].iter().all(|&v| v == 0.0), "{f}");
    }
}

#[test]
fn subnormal_only_data() {
    // Every element below each format's smallest normal: exercises the
    // subnormal encode/decode ladder and max-scaling from tiny absmax.
    for f in Fp8Format::ALL {
        let step = f.spec().min_subnormal();
        let data: Vec<f32> = (0..24)
            .map(|i| step * 0.125 * (i as f32 - 11.5) / 12.0)
            .collect();
        assert_per_tensor_identical(&data, &[24], f);
        assert_per_channel_identical(&data, 2, 12, f);
        // And f32-subnormal inputs (far below every FP8 grid point).
        let tiny: Vec<f32> = (1..9)
            .map(|i| f32::from_bits(i) * if i % 2 == 0 { -1.0 } else { 1.0 })
            .collect();
        assert_per_tensor_identical(&tiny, &[8], f);
    }
}

#[test]
fn saturating_and_mixed_magnitude_data() {
    for f in Fp8Format::ALL {
        let max_v = f.max_value();
        let data = [
            max_v * 2.0,
            -max_v,
            max_v * 0.5,
            1.0,
            -1e-6,
            0.0,
            -0.0,
            max_v * 1e4,
        ];
        assert_per_tensor_identical(&data, &[8], f);
        assert_per_channel_identical(&data, 2, 4, f);
        assert_per_channel_identical(&data, 4, 2, f);
    }
}

fn all_formats() -> impl Strategy<Value = Fp8Format> {
    prop_oneof![
        Just(Fp8Format::E5M2),
        Just(Fp8Format::E4M3),
        Just(Fp8Format::E3M4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random tensors: per-tensor storage decode is bit-identical to the
    /// fake-quant LUT path.
    #[test]
    fn per_tensor_roundtrip_matches_fake_quant(
        f in all_formats(),
        xs in proptest::collection::vec(-1e5f32..1e5, 1..256),
    ) {
        assert_per_tensor_identical(&xs, &[xs.len()], f);
    }

    /// Random raw bit patterns (subnormals, specials, NaN) still decode to
    /// exactly what fake quantization produces.
    #[test]
    fn per_tensor_bit_patterns_match(
        f in all_formats(),
        raw in proptest::collection::vec(0u32..=u32::MAX, 1..128),
    ) {
        let xs: Vec<f32> = raw.into_iter().map(f32::from_bits).collect();
        let st = StoredTensor::quantize(&xs, &[xs.len()], f).unwrap();
        let codec = Fp8Codec::new(f);
        let mut fake = xs.clone();
        let scale = match st.scales() {
            StoredScales::PerTensor(s) => *s,
            _ => unreachable!(),
        };
        fake_quant_fp8_lut(&mut fake, &codec, scale);
        for (i, (a, b)) in st.dequantize().iter().zip(&fake).enumerate() {
            prop_assert!(
                a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                "{} elem {}: {:?} vs {:?}", f, i, a, b
            );
        }
    }

    /// Random shapes: per-channel storage scales and decode are
    /// bit-identical to `fake_quant_fp8_per_channel_lut`.
    #[test]
    fn per_channel_roundtrip_matches_fake_quant(
        f in all_formats(),
        channels in 1usize..8,
        inner in 1usize..48,
        seed in 0u32..1000,
    ) {
        let n = channels * inner;
        let xs: Vec<f32> = (0..n)
            .map(|i| {
                let t = (i as f32 * 0.37 + seed as f32 * 1.13).sin();
                t * 10f32.powi((i % 9) as i32 - 4)
            })
            .collect();
        assert_per_channel_identical(&xs, channels, inner, f);
    }
}
