//! LUT ⇔ scalar codec equivalence suite.
//!
//! The table-driven fast path (`Fp8Lut`, `fake_quant_fp8_lut`) must be
//! bit-identical to the scalar reference codec for every input — these
//! tests enforce that exhaustively over the code space, deterministically
//! over the known hard regions (rounding-boundary ties, subnormals,
//! saturation, specials), and probabilistically over the full f32 space.

use proptest::prelude::*;
use ptq_fp8::{
    fake_quant_fp8, fake_quant_fp8_lut, fake_quant_fp8_per_channel, fake_quant_fp8_per_channel_lut,
    fp8_scale, Fp8Codec, Fp8Format, Fp8Lut, OverflowPolicy, Rounding,
};

/// Bitwise equality that treats every NaN as equal (the scalar codec
/// canonicalizes NaNs, so payloads never differ in practice — but the
/// comparison should not depend on that).
fn bits_eq(a: f32, b: f32) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

/// Stats equality that treats NaN mse as equal to NaN mse (a NonSaturating
/// codec turns overflow into NaN, which poisons the accumulator on both
/// paths identically).
fn stats_eq(a: &ptq_fp8::FakeQuantStats, b: &ptq_fp8::FakeQuantStats) -> bool {
    (a.mse == b.mse || (a.mse.is_nan() && b.mse.is_nan()))
        && a.max_abs_err.to_bits() == b.max_abs_err.to_bits()
        && a.saturated == b.saturated
        && a.underflowed == b.underflowed
}

fn assert_quantize_matches(f: Fp8Format, x: f32) {
    let codec = Fp8Codec::new(f);
    let lut = Fp8Lut::for_codec(&codec).expect("default codec has a LUT");
    let (a, b) = (lut.quantize(x), codec.quantize(x));
    assert!(
        bits_eq(a, b),
        "{f}: quantize({x:?} = {:#010x}) lut {a:?} vs scalar {b:?}",
        x.to_bits()
    );
}

/// Every one of the 256 codepoints: decode tables agree, and re-quantizing
/// each representable value is the identity on both paths.
#[test]
fn exhaustive_256_codepoints_all_formats() {
    for f in Fp8Format::ALL {
        let codec = Fp8Codec::new(f);
        let lut = Fp8Lut::for_codec(&codec).unwrap();
        for code in 0u16..=255 {
            let code = code as u8;
            let v = codec.decode(code);
            assert!(
                bits_eq(lut.decode(code), v),
                "{f} decode mismatch at code {code:#04x}"
            );
            if v.is_finite() {
                assert_quantize_matches(f, v);
                assert!(
                    bits_eq(lut.quantize(v), v),
                    "{f} grid value {v} not a fixed point of the LUT"
                );
            } else if v.is_infinite() {
                // Saturating codec clamps ±Inf to ±max on both paths.
                assert_quantize_matches(f, v);
            }
        }
    }
}

/// The exact rounding boundaries between every pair of adjacent grid
/// values, probed at the boundary bit pattern and its neighbours. This is
/// where RNE ties live; one-off errors in the breakpoint table fail here.
#[test]
fn rounding_boundaries_and_ties() {
    for f in Fp8Format::ALL {
        let codec = Fp8Codec::new(f);
        let grid = codec.enumerate_finite_positive();
        for w in grid.windows(2) {
            let (lo, hi) = (w[0].1, w[1].1);
            // Midpoint computed in f64 so the f32 tie pattern itself is hit.
            let mid = ((lo as f64 + hi as f64) * 0.5) as f32;
            let mb = mid.to_bits();
            for delta in -2i64..=2 {
                let bits = (mb as i64 + delta).clamp(0, 0x7F80_0000) as u32;
                let x = f32::from_bits(bits);
                assert_quantize_matches(f, x);
                assert_quantize_matches(f, -x);
            }
        }
    }
}

/// The subnormal region of each format, exhaustively over a fine uniform
/// grid (16 probe points per subnormal step), plus the underflow boundary
/// around half the smallest subnormal.
#[test]
fn subnormal_region_fine_sweep() {
    for f in Fp8Format::ALL {
        let spec = f.spec();
        let step = spec.min_subnormal();
        let probes_per_step = 16;
        let mant_count = 1u32 << spec.man_bits;
        for i in 0..=(mant_count * probes_per_step) {
            let x = step * (i as f32 / probes_per_step as f32);
            assert_quantize_matches(f, x);
            assert_quantize_matches(f, -x);
        }
        // Underflow tie: exactly half the smallest subnormal rounds to
        // even (zero) under RNE; probe the bit neighbourhood.
        let half = step * 0.5;
        let hb = half.to_bits();
        for delta in -2i64..=2 {
            let x = f32::from_bits((hb as i64 + delta).max(0) as u32);
            assert_quantize_matches(f, x);
            assert_quantize_matches(f, -x);
        }
    }
}

/// Saturation: the half-ulp window around the max value, values far above
/// it, ±Inf, and f32::MAX.
#[test]
fn saturation_boundary() {
    for f in Fp8Format::ALL {
        let max_v = f.max_value();
        let ulp = f.spec().ulp_at(max_v);
        for x in [
            max_v,
            max_v + 0.25 * ulp,
            max_v + 0.5 * ulp,
            max_v + 0.75 * ulp,
            max_v + ulp,
            max_v * 2.0,
            max_v * 1e6,
            f32::MAX,
            f32::INFINITY,
        ] {
            assert_quantize_matches(f, x);
            assert_quantize_matches(f, -x);
        }
        // Bit-level scan across the saturation threshold.
        let tb = (max_v + 0.5 * ulp).to_bits();
        for delta in -3i64..=3 {
            let x = f32::from_bits((tb as i64 + delta) as u32);
            assert_quantize_matches(f, x);
            assert_quantize_matches(f, -x);
        }
    }
}

/// NaN inputs (canonical, payloaded, negative) map to NaN on both paths.
#[test]
fn nan_handling() {
    for f in Fp8Format::ALL {
        let codec = Fp8Codec::new(f);
        let lut = Fp8Lut::for_codec(&codec).unwrap();
        for nan in [
            f32::NAN,
            -f32::NAN,
            f32::from_bits(0x7F80_0001), // signalling payload
            f32::from_bits(0xFFC0_1234), // negative, payloaded
        ] {
            assert!(lut.quantize(nan).is_nan(), "{f}");
            assert!(bits_eq(lut.quantize(nan), codec.quantize(nan)), "{f}");
        }
    }
}

/// Deterministic strided sweep across the entire positive f32 bit space
/// (prime stride so every exponent region is visited), both signs.
#[test]
fn strided_bit_space_sweep() {
    for f in Fp8Format::ALL {
        let codec = Fp8Codec::new(f);
        let lut = Fp8Lut::for_codec(&codec).unwrap();
        let mut bits = 0u32;
        while bits <= 0x7F80_0000 {
            let x = f32::from_bits(bits);
            assert!(
                bits_eq(lut.quantize(x), codec.quantize(x)),
                "{f} bits {bits:#010x}"
            );
            let neg = f32::from_bits(bits | 0x8000_0000);
            assert!(
                bits_eq(lut.quantize(neg), codec.quantize(neg)),
                "{f} bits {:#010x}",
                bits | 0x8000_0000
            );
            bits = bits.saturating_add(39_119); // prime, ~54k probes/format
        }
    }
}

/// Non-default codec policies transparently fall back to the scalar path
/// inside `fake_quant_fp8_lut`, so results still match exactly.
#[test]
fn non_default_policies_fall_back() {
    for f in Fp8Format::ALL {
        for codec in [
            Fp8Codec::new(f).with_rounding(Rounding::TowardZero),
            Fp8Codec::new(f).with_overflow(OverflowPolicy::NonSaturating),
        ] {
            let data: Vec<f32> = (0..257).map(|i| (i as f32 - 128.0) * 0.37).collect();
            let mut a = data.clone();
            let mut b = data;
            let sa = fake_quant_fp8(&mut a, &codec, 1.7);
            let sb = fake_quant_fp8_lut(&mut b, &codec, 1.7);
            assert!(stats_eq(&sa, &sb), "{f}: {sa:?} vs {sb:?}");
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}

fn all_formats() -> impl Strategy<Value = Fp8Format> {
    prop_oneof![
        Just(Fp8Format::E5M2),
        Just(Fp8Format::E4M3),
        Just(Fp8Format::E3M4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random normal f32s across the full exponent range.
    #[test]
    fn random_normals_match(f in all_formats(), xs in proptest::collection::vec(proptest::num::f32::NORMAL, 1..200)) {
        for x in xs {
            assert_quantize_matches(f, x);
        }
    }

    /// Random raw bit patterns — hits subnormals, specials and NaNs too.
    #[test]
    fn random_bit_patterns_match(f in all_formats(), bits in proptest::collection::vec(0u32..=u32::MAX, 1..200)) {
        let codec = Fp8Codec::new(f);
        let lut = Fp8Lut::for_codec(&codec).unwrap();
        for b in bits {
            let x = f32::from_bits(b);
            prop_assert!(
                bits_eq(lut.quantize(x), codec.quantize(x)),
                "{} bits {:#010x}", f, b
            );
        }
    }

    /// Whole-tensor pass: the per-tensor LUT entry point returns identical
    /// outputs AND identical statistics (mse, max_abs_err, saturation and
    /// underflow counts) to the scalar entry point, across random scales.
    #[test]
    fn fake_quant_stats_identical(
        f in all_formats(),
        xs in proptest::collection::vec(-1000.0f32..1000.0, 1..300),
        absmax in 1e-3f32..2000.0,
    ) {
        let codec = Fp8Codec::new(f);
        let scale = fp8_scale(f, absmax);
        let mut a = xs.clone();
        let mut b = xs;
        let sa = fake_quant_fp8(&mut a, &codec, scale);
        let sb = fake_quant_fp8_lut(&mut b, &codec, scale);
        prop_assert_eq!(sa, sb);
        prop_assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    /// Per-channel pass: identical scales, outputs and statistics.
    #[test]
    fn per_channel_identical(
        f in all_formats(),
        channels in 1usize..6,
        inner in 1usize..40,
        seed in 0u32..1000,
    ) {
        let n = channels * inner;
        // Deterministic per-case data spanning several magnitudes.
        let xs: Vec<f32> = (0..n)
            .map(|i| {
                let t = (i as f32 + seed as f32 * 0.77).sin();
                t * 10f32.powi((i % 7) as i32 - 3)
            })
            .collect();
        let codec = Fp8Codec::new(f);
        let mut a = xs.clone();
        let mut b = xs;
        let (scales_a, sa) = fake_quant_fp8_per_channel(&mut a, &codec, channels, inner);
        let (scales_b, sb) = fake_quant_fp8_per_channel_lut(&mut b, &codec, channels, inner);
        prop_assert_eq!(scales_a, scales_b);
        prop_assert_eq!(sa, sb);
        prop_assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }
}
