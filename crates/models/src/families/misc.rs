//! Remaining workload families: DLRM-style recommendation, speech-style
//! conv-frontend encoders and the conv generator used as the Stable
//! Diffusion analogue.

use crate::families::common::{ids_tensor, perturb_tokens, NlpConfig};
use crate::task::Metric;
use crate::workload::{Workload, WorkloadSpec};
use ptq_metrics::{feature_moments, Domain};
use ptq_nn::{GraphBuilder, NoopHook, UnwrapOk};
use ptq_tensor::ops::Conv2dParams;
use ptq_tensor::{Tensor, TensorRng};

/// DLRM-style: categorical embeddings + dense features through an MLP to a
/// binary click prediction (the Criteo analogue). Embedding tables get a
/// long-tailed row-norm distribution, as popularity-sorted embeddings have.
pub fn dlrm_like(fields: usize, dim: usize, hidden: usize, seed: u64) -> Workload {
    let vocab = 50;
    let mut rng = TensorRng::seed(seed);
    let mut b = GraphBuilder::new();
    let ids = b.input(); // [fields]
    let dense = b.input(); // [1, dim]
    let mut table = rng.normal(&[vocab, dim], 0.0, 1.0);
    // Popularity long tail: scale row r by 1/(1+r/8).
    for r in 0..vocab {
        let s = 1.0 / (1.0 + r as f32 / 8.0);
        for v in &mut table.data_mut()[r * dim..(r + 1) * dim] {
            *v *= s;
        }
    }
    let table = b.param(table);
    let e = b.embedding(ids, table); // [fields, dim]
    let flat = b.reshape(e, &[1, fields * dim]);
    let w_dense = b.param(rng.kaiming(&[fields * dim, dim]));
    let dense_proj = b.linear(dense, w_dense, None); // [1, fields*dim]
    let joint = b.add(flat, dense_proj);
    let w1 = b.param(rng.kaiming(&[hidden, fields * dim]));
    let h = b.linear(joint, w1, None);
    let h = b.relu(h);
    let w2 = b.param(rng.kaiming(&[2, hidden]));
    let b2 = b.param(Tensor::zeros(&[2]));
    let out = b.linear(h, w2, Some(b2));
    let mut graph = b.finish(vec![out]);

    let mut rng = TensorRng::seed(seed ^ 0xD12);
    let n = 96;
    // Two prototype "users": a fixed id vector + dense profile each;
    // samples perturb the dense features and occasionally one category.
    let proto_ids: Vec<Vec<usize>> = (0..2).map(|_| rng.token_ids(fields, vocab)).collect();
    let proto_dense: Vec<Tensor> = (0..2).map(|_| rng.normal(&[1, dim], 0.0, 1.0)).collect();
    let sample = |c: usize, rng: &mut TensorRng| -> Vec<Tensor> {
        let mut ids = proto_ids[c].clone();
        if rng.unit() < 0.3 {
            let f = rng.below(fields);
            ids[f] = rng.below(vocab);
        }
        let noise = rng.normal(&[1, dim], 0.0, 0.35);
        vec![ids_tensor(&ids), proto_dense[c].add(&noise)]
    };
    let mut eval = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let mut calib = Vec::new();
    for i in 0..n {
        let c = i % 2;
        labels.push(c == 1);
        eval.push(sample(c, &mut rng));
        if i < 16 {
            calib.push(sample((i + 1) % 2, &mut rng));
        }
    }
    let head = crate::anchor::head_node(&graph);
    let mut probe = eval.clone();
    for c in 0..2 {
        probe.push(vec![ids_tensor(&proto_ids[c]), proto_dense[c].clone()]);
    }
    let feats = crate::anchor::capture_features(&graph, &probe, head);
    let n_feat = feats.dim(0);
    let rows: Vec<usize> = (n_feat - 2..n_feat).collect();
    crate::anchor::install_anchor_head_rows(&mut graph, head, &feats, &rows);
    Workload::new(
        WorkloadSpec {
            name: format!("dlrm_like_f{fields}d{dim}/criteo_syn"),
            domain: Domain::Nlp,
            family: "dlrm_like".to_string(),
        },
        graph,
        calib,
        eval,
        Metric::BinaryF1 { labels },
        None,
    )
}

/// Speech-style: 1-D conv frontend (expressed as `[1, 1, 1, T]` conv with
/// `1×k` kernels) followed by a linear classifier over pooled features
/// (the wav2vec/HuBERT analogue, scored as utterance classification).
pub fn speech_like(
    t_len: usize,
    width: usize,
    depth: usize,
    classes: usize,
    seed: u64,
) -> Workload {
    let mut rng = TensorRng::seed(seed);
    let mut b = GraphBuilder::new();
    let x = b.input(); // [1, 1, 1, T]
                       // Frontend: stride-2 1xk convs halve the time axis each block.
    let mut cur = x;
    let mut cin = 1;
    let mut t = t_len;
    for _ in 0..depth {
        let w = b.param(rng.kaiming(&[width, cin, 1, 5]));
        cur = b.conv2d(
            cur,
            w,
            None,
            Conv2dParams {
                stride: 2,
                padding: 0,
            },
        );
        cur = b.gelu(cur);
        cin = width;
        t = (t - 5) / 2 + 1;
    }
    let pooled = b.global_avg_pool(cur); // [1, width]
    let wh = b.param(rng.kaiming(&[classes, width]));
    let bh = b.param(Tensor::zeros(&[classes]));
    let out = b.linear(pooled, wh, Some(bh));
    let mut graph = b.finish(vec![out]);
    assert!(t >= 1, "waveform too short for depth");

    let mut rng = TensorRng::seed(seed ^ 0x5beec4);
    let n = 64;
    let (eval, labels, calib) =
        anchor_classification_task(&mut graph, n, classes, seed, &mut rng, &[1, 1, 1, t_len]);
    Workload::new(
        WorkloadSpec {
            name: format!("speech_like_w{width}d{depth}/librispeech_syn"),
            domain: Domain::Nlp,
            family: "speech_like".to_string(),
        },
        graph,
        calib,
        eval,
        Metric::Top1 { labels },
        None,
    )
}

/// Conv generator: latent `[batch, z]` → upsampled image, scored by the
/// FID proxy against the FP32 generator's feature moments (the Stable
/// Diffusion analogue). The "features" are the per-channel global averages
/// of the generated images.
pub fn generator_like(z: usize, width: usize, seed: u64) -> Workload {
    let batch = 32;
    let mut rng = TensorRng::seed(seed);
    let mut b = GraphBuilder::new();
    let noise = b.input(); // [batch, z]
    let w0 = b.param(rng.kaiming(&[width * 16, z]));
    let h = b.linear(noise, w0, None); // [batch, width*16]
    let h = b.reshape(h, &[batch, width, 4, 4]);
    let h = b.relu(h);
    let h = b.upsample2x(h); // [batch, width, 8, 8]
                             // Diffusion U-Nets carry wide activation tails (GroupNorm + SiLU);
                             // one amplified channel per conv gives the same per-tensor-grid
                             // stretch that hurts INT8 image quality in the paper's Figure 6.
    let mut w1t = rng.kaiming(&[width, width, 3, 3]);
    amplify_rows(&mut w1t, 0, 40.0);
    let w1 = b.param(w1t);
    let h = b.conv2d(h, w1, None, Conv2dParams::same(3));
    let h = b.silu(h);
    let h = b.upsample2x(h); // 16x16
    let mut w2t = rng.kaiming(&[width, width, 3, 3]);
    amplify_rows(&mut w2t, 1, 40.0);
    let w2 = b.param(w2t);
    let h = b.conv2d(h, w2, None, Conv2dParams::same(3));
    let h = b.tanh(h);
    // FID features: per-channel means over 8x8 regions (4 per channel) —
    // coarse spatial statistics, the role Inception features play.
    let h = b.avg_pool(h, 8); // [batch, width, 2, 2]
    let feat = b.reshape(h, &[batch, width * 4]);
    let graph = b.finish(vec![feat]);

    let mut rng = TensorRng::seed(seed ^ 0x9e9);
    let eval: Vec<Vec<Tensor>> = (0..4)
        .map(|_| vec![rng.normal(&[batch, z], 0.0, 1.0)])
        .collect();
    let calib: Vec<Vec<Tensor>> = (0..2)
        .map(|_| vec![rng.normal(&[batch, z], 0.0, 1.0)])
        .collect();

    // Reference moments from the FP32 generator on the eval latents.
    let feats: Vec<Tensor> = eval
        .iter()
        .map(|inp| {
            graph
                .run(inp, &mut NoopHook)
                .unwrap_ok()
                .pop()
                .expect("one output")
        })
        .collect();
    let all = Tensor::concat0(&feats.iter().collect::<Vec<_>>());
    let reference = feature_moments(&all);

    Workload::new(
        WorkloadSpec {
            name: format!("generator_like_w{width}/diffusion_syn"),
            domain: Domain::Cv,
            family: "generator_like".to_string(),
        },
        graph,
        calib,
        eval,
        Metric::FidScore { reference },
        None,
    )
}

/// Conv-frontend + transformer speech encoder (the wav2vec2 analogue with
/// the full extended op mix: Conv, LayerNorm, MatMul).
pub fn wav2vec_like(t_len: usize, cfg: &NlpConfig, seed: u64) -> Workload {
    use crate::families::common::transformer_block;
    let mut rng = TensorRng::seed(seed);
    let mut b = GraphBuilder::new();
    let x = b.input(); // [1, 1, 1, T]
                       // Conv frontend to cfg.seq frames of cfg.d dims.
    let w0 = b.param(rng.kaiming(&[cfg.d, 1, 1, 5]));
    let stride = t_len / cfg.seq;
    assert!(stride >= 1, "waveform too short");
    let h = b.conv2d(x, w0, None, Conv2dParams { stride, padding: 0 }); // [1, d, 1, frames]
    let frames = (t_len - 5) / stride + 1;
    assert!(frames >= cfg.seq, "frontend produces too few frames");
    let h = b.reshape(h, &[cfg.d, frames]);
    let h = b.permute(h, &[1, 0]); // [frames, d]
                                   // Trim to seq frames via reshape-select: take the first seq rows by
                                   // reshaping is not possible; instead require frames == seq.
    let mut cur = h;
    for l in 0..cfg.layers {
        cur = transformer_block(
            &mut b,
            &mut rng,
            cur,
            &NlpConfig {
                seq: frames,
                ..*cfg
            },
            l,
            false,
        );
    }
    let pooled = b.mean_rows(cur);
    let classes = 8;
    let wh = b.param(rng.kaiming(&[classes, cfg.d]));
    let bh = b.param(Tensor::zeros(&[classes]));
    let out = b.linear(pooled, wh, Some(bh));
    let mut graph = b.finish(vec![out]);

    let mut rng = TensorRng::seed(seed ^ 0x3a3);
    let n = 64;
    let (eval, labels, calib) =
        anchor_classification_task(&mut graph, n, classes, seed, &mut rng, &[1, 1, 1, t_len]);
    Workload::new(
        WorkloadSpec {
            name: format!("wav2vec_like_{}d{}l/librispeech_syn", cfg.d, cfg.layers),
            domain: Domain::Nlp,
            family: "wav2vec_like".to_string(),
        },
        graph,
        calib,
        eval,
        Metric::Top1 { labels },
        None,
    )
}

/// Scale one output channel of a conv weight `[cout, cin, kh, kw]` — the
/// outlier-channel generator for conv models without norm layers.
fn amplify_rows(w: &mut Tensor, channel: usize, gain: f32) {
    let cout = w.dim(0);
    let inner = w.len() / cout;
    let c = channel % cout;
    for v in &mut w.data_mut()[c * inner..(c + 1) * inner] {
        *v *= gain;
    }
}

/// Shared per-sample classification task assembly with anchor-head
/// rewiring: generates `n` clean inputs of `shape`, installs a
/// nearest-anchor head, labels from the rewired FP32 model, and perturbed
/// eval inputs. Returns `(eval, labels, calib)`.
#[allow(clippy::type_complexity)]
fn anchor_classification_task(
    graph: &mut ptq_nn::Graph,
    n: usize,
    classes: usize,
    seed: u64,
    rng: &mut TensorRng,
    shape: &[usize],
) -> (Vec<Vec<Tensor>>, Vec<usize>, Vec<Vec<Tensor>>) {
    let _ = seed;
    let prototypes: Vec<Tensor> = (0..classes).map(|_| rng.normal(shape, 0.0, 1.0)).collect();
    let mut eval = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let mut calib = Vec::new();
    for i in 0..n {
        let c = i % classes;
        labels.push(c);
        let noise = rng.normal(shape, 0.0, 0.35);
        eval.push(vec![prototypes[c].add(&noise)]);
        if i < 16 {
            let noise = rng.normal(shape, 0.0, 0.35);
            calib.push(vec![prototypes[(i + 1) % classes].add(&noise)]);
        }
    }
    let head = crate::anchor::head_node(graph);
    let mut probe = eval.clone();
    probe.extend(prototypes.iter().map(|p| vec![p.clone()]));
    let feats = crate::anchor::capture_features(graph, &probe, head);
    let n_feat = feats.dim(0);
    let rows: Vec<usize> = (n_feat - classes..n_feat).collect();
    crate::anchor::install_anchor_head_rows(graph, head, &feats, &rows);
    (eval, labels, calib)
}

/// Marian-style: a (non-causal) encoder stack feeding a causal decoder
/// stack via residual add — scored as last-token prediction (the WMT
/// analogue without a cross-attention op).
pub fn translator_like(cfg: &NlpConfig) -> Workload {
    use crate::families::common::{embed_tokens, transformer_block};
    let mut rng = TensorRng::seed(cfg.seed);
    let mut b = GraphBuilder::new();
    let ids = b.input();
    let mut x = embed_tokens(&mut b, &mut rng, ids, cfg);
    for l in 0..cfg.layers {
        x = transformer_block(&mut b, &mut rng, x, cfg, l, false);
    }
    let enc = x;
    // Decoder operates on the same token stream (simplified), with the
    // encoder output added residually (the cross-connection).
    let mut y = embed_tokens(&mut b, &mut rng, ids, cfg);
    for l in 0..cfg.layers {
        y = transformer_block(&mut b, &mut rng, y, cfg, cfg.layers + l, true);
        y = b.add(y, enc);
    }
    let wh = b.param(rng.normal(&[cfg.vocab, cfg.d], 0.0, (1.0 / cfg.d as f32).sqrt()));
    let out = b.linear(y, wh, None);
    let graph = b.finish(vec![out]);

    let mut rng = TensorRng::seed(cfg.seed ^ 0x77a);
    let n = 96;
    // Margin-filtered item selection, as in `nlp::decoder_workload`.
    let pool = 3 * n;
    let candidates: Vec<Vec<usize>> = (0..pool)
        .map(|_| rng.token_ids(cfg.seq, cfg.vocab))
        .collect();
    let mut scored: Vec<(f32, usize, usize)> = candidates
        .iter()
        .enumerate()
        .map(|(i, ids)| {
            let out = graph
                .infer(&[ids_tensor(ids)])
                .unwrap_ok()
                .pop()
                .expect("one output");
            let last = out.row(out.dim(0) - 1);
            let mut top1 = f32::NEG_INFINITY;
            let mut top2 = f32::NEG_INFINITY;
            let mut arg = 0;
            for (j, &v) in last.iter().enumerate() {
                if v > top1 {
                    top2 = top1;
                    top1 = v;
                    arg = j;
                } else if v > top2 {
                    top2 = v;
                }
            }
            (top1 - top2, i, arg)
        })
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite margins"));
    scored.truncate(n);
    let labels: Vec<usize> = scored.iter().map(|&(_, _, arg)| arg).collect();
    let eval: Vec<Vec<Tensor>> = scored
        .iter()
        .map(|&(_, i, _)| {
            let ids = &candidates[i];
            let mut p = perturb_tokens(ids, cfg.vocab, 0.08, &mut rng);
            let m = p.len();
            p[m - 1] = ids[m - 1];
            vec![ids_tensor(&p)]
        })
        .collect();
    let calib: Vec<Vec<Tensor>> = (0..16)
        .map(|_| vec![ids_tensor(&rng.token_ids(cfg.seq, cfg.vocab))])
        .collect();
    Workload::new(
        WorkloadSpec {
            name: format!("translator_like_{}d{}l/wmt_syn", cfg.d, cfg.layers),
            domain: Domain::Nlp,
            family: "translator_like".to_string(),
        },
        graph,
        calib,
        eval,
        Metric::LastTokenTop1 { labels },
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dlrm_builds_and_scores() {
        let w = dlrm_like(6, 8, 16, 1);
        assert!(w.fp32_score > 0.4, "fp32 {}", w.fp32_score);
        assert_eq!(w.graph.input_ids().len(), 2);
    }

    #[test]
    fn speech_builds_and_scores() {
        let w = speech_like(64, 8, 2, 6, 2);
        assert!(w.fp32_score > 0.3, "fp32 {}", w.fp32_score);
    }

    #[test]
    fn generator_fp32_is_perfect() {
        let w = generator_like(8, 8, 3);
        assert!(
            (w.fp32_score - 1.0).abs() < 1e-9,
            "fid score {}",
            w.fp32_score
        );
    }

    #[test]
    fn wav2vec_builds() {
        let cfg = NlpConfig {
            vocab: 0,
            seq: 12,
            d: 16,
            heads: 4,
            layers: 1,
            ffn_mult: 2,
            seed: 4,
            outlier_gain: 15.0,
            outlier_channels: 1,
            gamma_sigma: 0.3,
        };
        let w = wav2vec_like(64, &cfg, 4);
        assert!(w.fp32_score > 0.3, "fp32 {}", w.fp32_score);
    }

    #[test]
    fn translator_builds() {
        let cfg = NlpConfig {
            vocab: 32,
            seq: 10,
            d: 16,
            heads: 4,
            layers: 1,
            ffn_mult: 2,
            seed: 5,
            outlier_gain: 30.0,
            outlier_channels: 1,
            gamma_sigma: 0.3,
        };
        let w = translator_like(&cfg);
        assert!(w.fp32_score > 0.2, "fp32 {}", w.fp32_score);
    }
}
