//! Shared configuration types and graph-building helpers for the families.

use ptq_nn::{GraphBuilder, ValueId};
use ptq_tensor::ops::Conv2dParams;
use ptq_tensor::{Tensor, TensorRng};

/// Configuration of a convolutional workload.
#[derive(Debug, Clone, Copy)]
pub struct CvConfig {
    /// Input image side (H = W).
    pub img: usize,
    /// Input channels.
    pub in_ch: usize,
    /// Base channel width.
    pub width: usize,
    /// Number of blocks.
    pub depth: usize,
    /// Output classes.
    pub classes: usize,
    /// Weight/data seed.
    pub seed: u64,
    /// BatchNorm gain amplification applied to a few channels — the
    /// mechanism that gives MobileNet/EfficientNet/ViT-style models the
    /// wide activation tails that hurt per-tensor INT8 (0.0 = benign).
    pub hostility: f32,
}

impl Default for CvConfig {
    fn default() -> Self {
        CvConfig {
            img: 16,
            in_ch: 3,
            width: 12,
            depth: 3,
            classes: 10,
            seed: 0,
            hostility: 0.0,
        }
    }
}

/// Configuration of a transformer workload.
#[derive(Debug, Clone, Copy)]
pub struct NlpConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length (static; one sequence per forward).
    pub seq: usize,
    /// Model width.
    pub d: usize,
    /// Attention heads (must divide `d`).
    pub heads: usize,
    /// Encoder/decoder blocks.
    pub layers: usize,
    /// FFN expansion factor.
    pub ffn_mult: usize,
    /// Weight/data seed.
    pub seed: u64,
    /// LayerNorm gain applied to a few channels — reproduces the
    /// transformer activation outliers of the paper's Figure 3. Real LLMs
    /// span roughly 10×–1000×; the zoo samples this range.
    pub outlier_gain: f32,
    /// How many channels get the amplified gain.
    pub outlier_channels: usize,
    /// Log-normal σ of the LayerNorm gain distribution: heavy-tailed
    /// channel scales spreading activations across many binades (the
    /// "range-bounded" property of Figure 3). E3M4's ~2·10³ dynamic-range
    /// window starts losing the low tail around σ ≳ 1.2, while E4M3's
    /// ~2·10⁵ window does not — the mechanism behind the paper's
    /// E4M3-for-NLP recommendation.
    pub gamma_sigma: f32,
}

impl Default for NlpConfig {
    fn default() -> Self {
        NlpConfig {
            vocab: 64,
            seq: 16,
            d: 32,
            heads: 4,
            layers: 2,
            ffn_mult: 2,
            seed: 0,
            outlier_gain: 1.0,
            outlier_channels: 0,
            gamma_sigma: 0.3,
        }
    }
}

/// Task head attached to an encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Head {
    /// K-way classification (`[1, K]` logits).
    Classes(usize),
    /// Binary decision (`[1, 2]` logits).
    Binary,
    /// Scalar regression (`[1, 1]`).
    Regression,
}

impl Head {
    /// Output width of the head.
    pub fn width(self) -> usize {
        match self {
            Head::Classes(k) => k,
            Head::Binary => 2,
            Head::Regression => 1,
        }
    }
}

/// Conv → BatchNorm → ReLU block. Returns the activated value.
///
/// `hostility > 1` amplifies the BN gain of one channel (rotating through
/// channels by `block_idx`), creating the per-channel activation outliers
/// that stretch per-tensor INT8 grids.
#[allow(clippy::too_many_arguments)]
pub fn conv_bn_relu(
    b: &mut GraphBuilder,
    rng: &mut TensorRng,
    x: ValueId,
    cin: usize,
    cout: usize,
    k: usize,
    stride: usize,
    hostility: f32,
    block_idx: usize,
) -> ValueId {
    let w = b.param(rng.kaiming(&[cout, cin, k, k]));
    let p = Conv2dParams {
        stride,
        padding: k / 2,
    };
    let c = b.conv2d(x, w, None, p);
    let bn = batchnorm_with_hostility(b, rng, c, cout, hostility, block_idx);
    b.relu(bn)
}

/// Attach an inference BatchNorm with near-trained statistics and optional
/// amplified gain channels.
pub fn batchnorm_with_hostility(
    b: &mut GraphBuilder,
    rng: &mut TensorRng,
    x: ValueId,
    c: usize,
    hostility: f32,
    block_idx: usize,
) -> ValueId {
    let mut gamma = rng.uniform(&[c], 0.8, 1.2);
    if hostility > 1.0 {
        // One amplified channel per block, rotating so different blocks hit
        // different channels.
        let ch = block_idx % c;
        gamma.data_mut()[ch] *= hostility;
    }
    let beta = rng.normal(&[c], 0.0, 0.1);
    // Running stats roughly matching a unit-variance pre-activation: the
    // interpreter's BN then keeps activations in a sane range, as trained
    // BN would.
    let mean = rng.normal(&[c], 0.0, 0.05);
    let var = rng.uniform(&[c], 0.7, 1.3);
    let gamma = b.param(gamma);
    let beta = b.param(beta);
    let mean = b.param(mean);
    let var = b.param(var);
    b.batchnorm(x, gamma, beta, mean, var, 1e-5)
}

/// LayerNorm whose gain has `outlier_channels` channels amplified by
/// `outlier_gain` — the Figure-3 NLP activation-outlier generator.
#[allow(clippy::too_many_arguments)]
pub fn layernorm_with_outliers(
    b: &mut GraphBuilder,
    rng: &mut TensorRng,
    x: ValueId,
    d: usize,
    outlier_gain: f32,
    outlier_channels: usize,
    layer_idx: usize,
    gamma_sigma: f32,
) -> (ValueId, Vec<f32>) {
    // Heavy-tailed channel scales: log-normal gains spread activation
    // magnitudes across binades (Figure 3's "range-bounded" NLP tensors).
    let mut gamma = rng.uniform(&[d], 0.8, 1.2);
    if gamma_sigma > 0.0 {
        let ln = rng.normal(&[d], 0.0, gamma_sigma);
        for (g, l) in gamma.data_mut().iter_mut().zip(ln.data()) {
            *g *= l.exp();
        }
    }
    for i in 0..outlier_channels.min(d) {
        // Deterministic channel choice, varying per layer.
        let ch = (layer_idx * 7 + i * 13) % d;
        gamma.data_mut()[ch] *= outlier_gain;
    }
    let mags: Vec<f32> = gamma.data().iter().map(|g| g.abs()).collect();
    let beta = rng.normal(&[d], 0.0, 0.05);
    let gamma = b.param(gamma);
    let beta = b.param(beta);
    (b.layernorm(x, gamma, beta, 1e-5), mags)
}

/// Column scales that *co-adapt* a weight to its input's per-channel
/// magnitudes: a trained layer keeps each input channel's contribution
/// comparable, so weights multiplying outlier channels are
/// correspondingly small (the structure Xiao et al. 2022 report in real
/// transformers — and the reason activation outliers, not weights, are
/// the INT8 bottleneck). Returns `median(|mag|)/|mag_j|`, clamped to
/// [1/1024, 1024].
///
/// Full compensation means a consuming weight's *column spread equals the
/// activation outlier ratio* — the property that separates the formats:
/// per-channel FP8 weight rows then span γ, which E4M3's ~2·10⁵
/// dynamic-range window absorbs, E3M4's ~2·10³ window loses to subnormals
/// for extreme γ, and a 127-level uniform grid loses far earlier.
pub fn coadapt_scales(mags: &[f32]) -> Vec<f32> {
    let mut sorted: Vec<f32> = mags.iter().map(|m| m.max(1e-9)).collect();
    sorted.sort_by(f32::total_cmp);
    let med = sorted[sorted.len() / 2].max(1e-9);
    mags.iter()
        .map(|&m| (med / m.max(1e-9)).clamp(1.0 / 1024.0, 1024.0))
        .collect()
}

/// Apply per-input-channel scales to a `[out, in]` weight.
pub fn scale_columns(w: &mut Tensor, scales: &[f32]) {
    let (rows, cols) = (w.dim(0), w.dim(1));
    assert_eq!(cols, scales.len(), "column-scale length");
    let data = w.data_mut();
    for r in 0..rows {
        for (j, &s) in scales.iter().enumerate() {
            data[r * cols + j] *= s;
        }
    }
}

/// Multi-head self-attention over a `[seq, d]` activation; returns the
/// projected context. `causal` inserts the decoder mask.
#[allow(clippy::too_many_arguments)]
pub fn self_attention(
    b: &mut GraphBuilder,
    rng: &mut TensorRng,
    x: ValueId,
    seq: usize,
    d: usize,
    heads: usize,
    causal: bool,
    in_scales: Option<&[f32]>,
) -> ValueId {
    assert_eq!(d % heads, 0, "heads must divide model width");
    let dh = d / heads;
    let mk = |rng: &mut TensorRng| {
        let mut w = rng.kaiming(&[d, d]);
        if let Some(s) = in_scales {
            scale_columns(&mut w, s);
        }
        w
    };
    let wq = mk(rng);
    let wk = mk(rng);
    let wv = mk(rng);
    let wq = b.param(wq);
    let wk = b.param(wk);
    let wv = b.param(wv);
    let wo = b.param(rng.kaiming(&[d, d]));
    let q = b.linear(x, wq, None);
    let k = b.linear(x, wk, None);
    let v = b.linear(x, wv, None);
    // [seq, d] -> [heads, seq, dh]
    let qh = b.reshape(q, &[seq, heads, dh]);
    let qh = b.permute(qh, &[1, 0, 2]);
    let kh = b.reshape(k, &[seq, heads, dh]);
    let kh = b.permute(kh, &[1, 2, 0]); // [heads, dh, seq]
    let vh = b.reshape(v, &[seq, heads, dh]);
    let vh = b.permute(vh, &[1, 0, 2]);
    let scores = b.batch_matmul(qh, kh); // [heads, seq, seq]
    let scores = b.scale(scores, 1.0 / (dh as f32).sqrt());
    let scores = if causal {
        b.causal_mask(scores)
    } else {
        scores
    };
    let probs = b.softmax(scores);
    let ctx = b.batch_matmul(probs, vh); // [heads, seq, dh]
    let ctx = b.permute(ctx, &[1, 0, 2]);
    let ctx = b.reshape(ctx, &[seq, d]);
    b.linear(ctx, wo, None)
}

/// One pre-norm transformer block (LN → MHA → +res → LN → FFN → +res).
#[allow(clippy::too_many_arguments)]
pub fn transformer_block(
    b: &mut GraphBuilder,
    rng: &mut TensorRng,
    x: ValueId,
    cfg: &NlpConfig,
    layer_idx: usize,
    causal: bool,
) -> ValueId {
    let (ln1, mags1) = layernorm_with_outliers(
        b,
        rng,
        x,
        cfg.d,
        cfg.outlier_gain,
        cfg.outlier_channels,
        layer_idx * 2,
        cfg.gamma_sigma,
    );
    let s1 = coadapt_scales(&mags1);
    let attn = self_attention(b, rng, ln1, cfg.seq, cfg.d, cfg.heads, causal, Some(&s1));
    let x = b.add(x, attn);
    let (ln2, mags2) = layernorm_with_outliers(
        b,
        rng,
        x,
        cfg.d,
        cfg.outlier_gain,
        cfg.outlier_channels,
        layer_idx * 2 + 1,
        cfg.gamma_sigma,
    );
    let s2 = coadapt_scales(&mags2);
    let h = cfg.d * cfg.ffn_mult;
    let mut w1t = rng.kaiming(&[h, cfg.d]);
    scale_columns(&mut w1t, &s2);
    let w1 = b.param(w1t);
    let w2 = b.param(rng.kaiming(&[cfg.d, h]));
    let f = b.linear(ln2, w1, None);
    let f = b.gelu(f);
    let f = b.linear(f, w2, None);
    b.add(x, f)
}

/// Token-embedding front end: ids (`[seq]` as f32) → `[seq, d]` with
/// learned positional embeddings added.
///
/// The three highest vocabulary ids are *spike tokens*: their embedding
/// rows are scaled by `~sqrt(outlier_gain)` (floored at 8×). Sequences
/// containing them carry token-dependent activation spikes — the
/// "attention-sink"-style rare outliers of real LLMs. Dynamic per-tensor
/// INT8 rescales the whole tensor around such a spike and crushes every
/// other channel into a handful of levels, while log-spaced FP8 keeps
/// small values representable — the asymmetry behind the paper's NLP
/// coverage gap.
pub fn embed_tokens(
    b: &mut GraphBuilder,
    rng: &mut TensorRng,
    ids: ValueId,
    cfg: &NlpConfig,
) -> ValueId {
    let mut table = rng.normal(&[cfg.vocab, cfg.d], 0.0, 1.0);
    if cfg.outlier_gain > 1.0 && cfg.vocab > 8 {
        let spike = cfg.outlier_gain.sqrt().max(8.0);
        for r in cfg.vocab - 3..cfg.vocab {
            for v in &mut table.data_mut()[r * cfg.d..(r + 1) * cfg.d] {
                *v *= spike;
            }
        }
    }
    let table = b.param(table);
    let e = b.embedding(ids, table);
    let pos = b.param(rng.normal(&[cfg.seq, cfg.d], 0.0, 0.5));
    b.add_param(e, pos)
}

/// Randomly replace each token with a uniform one with probability `p`
/// (the NLP eval perturbation).
pub fn perturb_tokens(ids: &[usize], vocab: usize, p: f32, rng: &mut TensorRng) -> Vec<usize> {
    ids.iter()
        .map(|&t| if rng.unit() < p { rng.below(vocab) } else { t })
        .collect()
}

/// Convert token ids to the f32 tensor the graph consumes.
pub fn ids_tensor(ids: &[usize]) -> Tensor {
    Tensor::from_vec(ids.iter().map(|&i| i as f32).collect(), &[ids.len()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptq_nn::{GraphBuilder, UnwrapOk};

    #[test]
    fn attention_block_runs() {
        let cfg = NlpConfig::default();
        let mut rng = TensorRng::seed(1);
        let mut b = GraphBuilder::new();
        let ids = b.input();
        let x = embed_tokens(&mut b, &mut rng, ids, &cfg);
        let x = transformer_block(&mut b, &mut rng, x, &cfg, 0, false);
        let g = b.finish(vec![x]);
        let ids = ids_tensor(&TensorRng::seed(2).token_ids(cfg.seq, cfg.vocab));
        let y = g.infer(&[ids]).unwrap_ok();
        assert_eq!(y[0].shape(), &[cfg.seq, cfg.d]);
        assert!(y[0].data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn causal_block_ignores_future_tokens() {
        // With the causal mask, changing the last token must not change the
        // first position's representation.
        let cfg = NlpConfig {
            layers: 1,
            ..NlpConfig::default()
        };
        let mut rng = TensorRng::seed(3);
        let mut b = GraphBuilder::new();
        let ids = b.input();
        let x = embed_tokens(&mut b, &mut rng, ids, &cfg);
        let x = transformer_block(&mut b, &mut rng, x, &cfg, 0, true);
        let g = b.finish(vec![x]);
        let mut toks = TensorRng::seed(4).token_ids(cfg.seq, cfg.vocab);
        let y1 = g.infer(&[ids_tensor(&toks)]).unwrap_ok();
        toks[cfg.seq - 1] = (toks[cfg.seq - 1] + 1) % cfg.vocab;
        let y2 = g.infer(&[ids_tensor(&toks)]).unwrap_ok();
        for j in 0..cfg.d {
            assert!((y1[0].at(&[0, j]) - y2[0].at(&[0, j])).abs() < 1e-5);
        }
        // ...but the last position does change.
        let mut diff = 0.0f32;
        for j in 0..cfg.d {
            diff += (y1[0].at(&[cfg.seq - 1, j]) - y2[0].at(&[cfg.seq - 1, j])).abs();
        }
        assert!(diff > 1e-3);
    }

    #[test]
    fn outlier_gamma_produces_outlier_activations() {
        let mut rng = TensorRng::seed(5);
        let mut b = GraphBuilder::new();
        let x_in = b.input();
        let (y, mags) = layernorm_with_outliers(&mut b, &mut rng, x_in, 16, 100.0, 1, 0, 0.0);
        assert_eq!(mags.len(), 16);
        let g = b.finish(vec![y]);
        let x = TensorRng::seed(6).normal(&[8, 16], 0.0, 1.0);
        let out = g.infer(&[x]).unwrap_ok();
        let absmax = out[0].data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        // RMS of a LayerNorm output row is ~1; the amplified channel
        // dominates by ~2 orders of magnitude.
        assert!(absmax > 50.0, "absmax {absmax}");
    }

    #[test]
    fn perturbation_rate() {
        let mut rng = TensorRng::seed(7);
        let ids: Vec<usize> = (0..1000).map(|i| i % 50).collect();
        let p = perturb_tokens(&ids, 50, 0.1, &mut rng);
        let changed = ids.iter().zip(&p).filter(|(a, b)| a != b).count();
        assert!((60..160).contains(&changed), "changed {changed}");
    }
}
