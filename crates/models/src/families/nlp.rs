//! NLP architecture families: encoder models with GLUE-style heads and
//! decoder models for LAMBADA-style last-token prediction and text
//! generation.
//!
//! The defining distributional property (paper Figure 3) is activation
//! outliers: a few LayerNorm gain channels are amplified by
//! [`NlpConfig::outlier_gain`], ranging from mild (≈10×) to extreme
//! (≈1000×, the LLM regime). Per-tensor INT8 activation grids stretch with
//! the outliers and starve the bulk; E4M3's wide dynamic range absorbs
//! them; E3M4's narrower range starts losing the bulk to subnormals at the
//! extreme end — reproducing the paper's E4M3-over-E3M4 ordering on NLP.

use crate::families::common::{
    embed_tokens, ids_tensor, perturb_tokens, transformer_block, Head, NlpConfig,
};
use crate::task::Metric;
use crate::workload::{Workload, WorkloadSpec};
use ptq_metrics::Domain;
use ptq_nn::{Graph, GraphBuilder, UnwrapOk};
use ptq_tensor::{Tensor, TensorRng};

/// Eval sequences per NLP workload.
const EVAL_N: usize = 192;
/// Calibration sequences.
const CALIB_N: usize = 24;
/// Token-replacement probability for eval perturbation.
const TOKEN_NOISE: f32 = 0.03;

/// Build an encoder graph with the given head.
pub fn encoder_graph(cfg: &NlpConfig, head: Head) -> Graph {
    let mut rng = TensorRng::seed(cfg.seed);
    let mut b = GraphBuilder::new();
    let ids = b.input();
    let mut x = embed_tokens(&mut b, &mut rng, ids, cfg);
    for l in 0..cfg.layers {
        x = transformer_block(&mut b, &mut rng, x, cfg, l, false);
    }
    let pooled = b.mean_rows(x);
    let wh = b.param(rng.kaiming(&[head.width(), cfg.d]));
    let bh = b.param(rng.normal(&[head.width()], 0.0, 0.05));
    let out = b.linear(pooled, wh, Some(bh));
    b.finish(vec![out])
}

/// Build a decoder (causal) graph with a vocabulary head over all
/// positions.
pub fn decoder_graph(cfg: &NlpConfig) -> Graph {
    let mut rng = TensorRng::seed(cfg.seed);
    let mut b = GraphBuilder::new();
    let ids = b.input();
    let mut x = embed_tokens(&mut b, &mut rng, ids, cfg);
    for l in 0..cfg.layers {
        x = transformer_block(&mut b, &mut rng, x, cfg, l, true);
    }
    let wh = b.param(rng.normal(&[cfg.vocab, cfg.d], 0.0, (1.0 / cfg.d as f32).sqrt()));
    let out = b.linear(x, wh, None);
    b.finish(vec![out])
}

/// Deterministic eval/calibration id sets for a config.
fn token_sets(cfg: &NlpConfig) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let mut rng = TensorRng::seed(cfg.seed ^ 0x71A5);
    let eval: Vec<Vec<usize>> = (0..EVAL_N)
        .map(|_| rng.token_ids(cfg.seq, cfg.vocab))
        .collect();
    let calib: Vec<Vec<usize>> = (0..CALIB_N)
        .map(|_| rng.token_ids(cfg.seq, cfg.vocab))
        .collect();
    (eval, calib)
}

/// Encoder workload with a classification/binary/regression head scored
/// with the appropriate GLUE-style metric. `task` names the synthetic
/// task for reporting (`mrpc_syn`, `cola_syn`, `sst2_syn`, `stsb_syn`).
///
/// Classification/binary tasks are prototype clusters in token space:
/// each class is a prototype sequence and samples replace tokens with
/// probability [`TOKEN_NOISE`]; the head's anchors are the prototypes'
/// own pooled features (see [`crate::anchor`]). Regression keeps the
/// FP32-target design (Pearson degrades smoothly under numeric
/// perturbation).
pub fn encoder_workload(family: &str, task: &str, cfg: &NlpConfig, head: Head) -> Workload {
    let mut graph = encoder_graph(cfg, head);
    let mut rng = TensorRng::seed(cfg.seed ^ 0xE7A1);
    let head_id = crate::anchor::head_node(&graph);

    let (eval, metric, calib) = match head {
        Head::Classes(_) | Head::Binary => {
            let k = head.width();
            let prototypes: Vec<Vec<usize>> =
                (0..k).map(|_| rng.token_ids(cfg.seq, cfg.vocab)).collect();
            let n = EVAL_N;
            let mut labels = Vec::with_capacity(n);
            let mut eval = Vec::with_capacity(n);
            let mut calib = Vec::new();
            for i in 0..n {
                let c = i % k;
                labels.push(c);
                let ids = perturb_tokens(&prototypes[c], cfg.vocab, TOKEN_NOISE, &mut rng);
                eval.push(vec![ids_tensor(&ids)]);
                if i < CALIB_N {
                    let ids =
                        perturb_tokens(&prototypes[(i + 1) % k], cfg.vocab, TOKEN_NOISE, &mut rng);
                    calib.push(vec![ids_tensor(&ids)]);
                }
            }
            // Anchor the head at the prototypes' own features.
            let mut probe = eval.clone();
            probe.extend(prototypes.iter().map(|p| vec![ids_tensor(p)]));
            let feats = crate::anchor::capture_features(&graph, &probe, head_id);
            let n_feat = feats.dim(0);
            let rows: Vec<usize> = (n_feat - k..n_feat).collect();
            crate::anchor::install_anchor_head_rows(&mut graph, head_id, &feats, &rows);

            let metric = match head {
                Head::Classes(_) => Metric::Top1 { labels },
                Head::Binary => {
                    let labels: Vec<bool> = labels.iter().map(|&c| c == 1).collect();
                    if task.contains("cola") {
                        Metric::Matthews { labels }
                    } else {
                        Metric::BinaryF1 { labels }
                    }
                }
                Head::Regression => unreachable!(),
            };
            (eval, metric, calib)
        }
        Head::Regression => {
            let (eval_ids, calib_ids) = token_sets(cfg);
            let clean_batches: Vec<Vec<Tensor>> =
                eval_ids.iter().map(|ids| vec![ids_tensor(ids)]).collect();
            let feats = crate::anchor::capture_features(&graph, &clean_batches, head_id);
            crate::anchor::install_regression_head(&mut graph, head_id, &feats, cfg.seed ^ 0xA11);
            // Targets: FP32 outputs on clean sequences; eval on perturbed.
            let targets: Vec<f32> = eval_ids
                .iter()
                .map(|ids| {
                    graph
                        .infer(&[ids_tensor(ids)])
                        .unwrap_ok()
                        .pop()
                        .expect("one output")
                        .data()[0]
                })
                .collect();
            let eval: Vec<Vec<Tensor>> = eval_ids
                .iter()
                .map(|ids| {
                    vec![ids_tensor(&perturb_tokens(
                        ids,
                        cfg.vocab,
                        TOKEN_NOISE,
                        &mut rng,
                    ))]
                })
                .collect();
            let calib: Vec<Vec<Tensor>> =
                calib_ids.iter().map(|ids| vec![ids_tensor(ids)]).collect();
            (eval, Metric::Pearson { targets }, calib)
        }
    };

    Workload::new(
        WorkloadSpec {
            name: format!("{family}_{}d{}l/{task}", cfg.d, cfg.layers),
            domain: Domain::Nlp,
            family: family.to_string(),
        },
        graph,
        calib,
        eval,
        metric,
        None,
    )
}

/// Decoder workload: LAMBADA-style last-token prediction. Labels are the
/// FP32 model's last-position argmax on clean sequences; eval perturbs the
/// *context* (all but the final position stays clean, mirroring how
/// LAMBADA fixes the target).
///
/// LAMBADA items are curated so a competent model can predict the target;
/// the analogous selection here keeps the sequences with the largest FP32
/// top-1/top-2 logit margins from a 3× candidate pool — the margin
/// structure a curated benchmark has. Without it every sample sits at a
/// near-tie and any numeric perturbation flips predictions.
pub fn decoder_workload(family: &str, cfg: &NlpConfig) -> Workload {
    let graph = decoder_graph(cfg);
    let mut rng = TensorRng::seed(cfg.seed ^ 0xDEC0);
    let pool = 3 * EVAL_N;
    let candidates: Vec<Vec<usize>> = (0..pool)
        .map(|_| rng.token_ids(cfg.seq, cfg.vocab))
        .collect();
    // FP32 top-1/top-2 margins on clean sequences.
    let mut scored: Vec<(f32, usize, usize)> = candidates
        .iter()
        .enumerate()
        .map(|(i, ids)| {
            let out = graph
                .infer(&[ids_tensor(ids)])
                .unwrap_ok()
                .pop()
                .expect("one output");
            let last = out.row(out.dim(0) - 1);
            let mut top1 = f32::NEG_INFINITY;
            let mut top2 = f32::NEG_INFINITY;
            let mut arg = 0;
            for (j, &v) in last.iter().enumerate() {
                if v > top1 {
                    top2 = top1;
                    top1 = v;
                    arg = j;
                } else if v > top2 {
                    top2 = v;
                }
            }
            (top1 - top2, i, arg)
        })
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite margins"));
    scored.truncate(EVAL_N);

    let labels: Vec<usize> = scored.iter().map(|&(_, _, arg)| arg).collect();
    let eval: Vec<Vec<Tensor>> = scored
        .iter()
        .map(|&(_, i, _)| {
            let ids = &candidates[i];
            let mut p = perturb_tokens(ids, cfg.vocab, TOKEN_NOISE, &mut rng);
            let n = p.len();
            p[n - 1] = ids[n - 1];
            vec![ids_tensor(&p)]
        })
        .collect();
    let calib: Vec<Vec<Tensor>> = (0..CALIB_N)
        .map(|_| vec![ids_tensor(&rng.token_ids(cfg.seq, cfg.vocab))])
        .collect();

    Workload::new(
        WorkloadSpec {
            name: format!("{family}_{}d{}l/lambada_syn", cfg.d, cfg.layers),
            domain: Domain::Nlp,
            family: family.to_string(),
        },
        graph,
        calib,
        eval,
        Metric::LastTokenTop1 { labels },
        None,
    )
}

/// Greedy-decode `steps` tokens from a prompt with the given hook applied
/// at every forward — the Table-4 text-generation harness. Returns the
/// generated token ids (prompt excluded).
///
/// This is the *full-window reference decoder*: every step re-runs the
/// whole `cfg.seq`-length window (static shapes), shifting the window as
/// tokens are produced — `O(seq²)` work per token. Incremental decoding
/// lives in `ptq_nn::DecodePlan`/`DecodeState` (and `ptq_core`'s
/// `DecodeSession`): one prefill pass seeds a per-layer KV cache, then
/// each step runs a single-row schedule against the cached keys/values.
/// Under an f32 cache the incremental path is bit-identical to this
/// function, which is why it stays — it is the equivalence oracle the
/// decode bench's `--full-window` mode and the `kv_cache_equivalence`
/// suite compare against. (Note the window *shifts* here while the cache
/// path uses absolute positions 0..t; the two agree until the window is
/// full, which is exactly the regime the oracle runs in.)
pub fn generate_greedy(
    graph: &Graph,
    cfg: &NlpConfig,
    prompt: &[usize],
    steps: usize,
    hook: &mut dyn ptq_nn::ExecHook,
) -> Vec<usize> {
    assert!(!prompt.is_empty(), "prompt must be non-empty");
    let mut window: Vec<usize> = vec![0; cfg.seq];
    let start = cfg.seq.saturating_sub(prompt.len());
    for (i, &t) in prompt.iter().rev().take(cfg.seq).rev().enumerate() {
        window[start + i] = t;
    }
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        let logits = graph
            .run(&[ids_tensor(&window)], hook)
            .unwrap_ok()
            .pop()
            .expect("one output");
        let last = logits.dim(0) - 1;
        let next = Tensor::from_slice(logits.row(last)).argmax();
        out.push(next);
        window.rotate_left(1);
        let n = window.len();
        window[n - 1] = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptq_nn::NoopHook;

    fn cfg(seed: u64) -> NlpConfig {
        NlpConfig {
            vocab: 32,
            seq: 12,
            d: 24,
            heads: 4,
            layers: 1,
            ffn_mult: 2,
            seed,
            outlier_gain: 20.0,
            outlier_channels: 1,
            gamma_sigma: 0.3,
        }
    }

    #[test]
    fn encoder_heads_all_score() {
        let c = cfg(1);
        let cls = encoder_workload("bert_like", "sst2_syn", &c, Head::Classes(4));
        assert!(cls.fp32_score > 0.4, "cls {}", cls.fp32_score);
        let f1 = encoder_workload("bert_like", "mrpc_syn", &c, Head::Binary);
        assert!(f1.fp32_score > 0.4, "f1 {}", f1.fp32_score);
        let mcc = encoder_workload("bert_like", "cola_syn", &c, Head::Binary);
        assert!(mcc.fp32_score.abs() <= 1.0);
        let reg = encoder_workload("bert_like", "stsb_syn", &c, Head::Regression);
        assert!(reg.fp32_score > 0.3, "pearson {}", reg.fp32_score);
    }

    #[test]
    fn decoder_workload_scores() {
        let w = decoder_workload("gpt_like", &cfg(2));
        assert!(
            w.fp32_score > 0.3 && w.fp32_score <= 1.0,
            "fp32 {}",
            w.fp32_score
        );
    }

    #[test]
    fn generation_is_deterministic_and_in_vocab() {
        let c = cfg(3);
        let g = decoder_graph(&c);
        let toks = generate_greedy(&g, &c, &[1, 2, 3], 20, &mut NoopHook);
        assert_eq!(toks.len(), 20);
        assert!(toks.iter().all(|&t| t < c.vocab));
        let again = generate_greedy(&g, &c, &[1, 2, 3], 20, &mut NoopHook);
        assert_eq!(toks, again);
    }

    #[test]
    fn nlp_workloads_deterministic() {
        let a = encoder_workload("bert_like", "sst2_syn", &cfg(5), Head::Classes(4));
        let b = encoder_workload("bert_like", "sst2_syn", &cfg(5), Head::Classes(4));
        assert_eq!(a.fp32_score, b.fp32_score);
    }

    #[test]
    fn outlier_gain_shows_in_activations() {
        let mild = encoder_workload("bert_like", "sst2_syn", &cfg(6), Head::Classes(4));
        let extreme_cfg = NlpConfig {
            outlier_gain: 500.0,
            ..cfg(6)
        };
        let extreme = encoder_workload("bert_like", "sst2_syn", &extreme_cfg, Head::Classes(4));
        struct AbsMax(f32);
        impl ptq_nn::ExecHook for AbsMax {
            fn after_node(&mut self, n: &ptq_nn::Node, o: &mut Tensor) {
                if n.op.class() == ptq_nn::OpClass::LayerNorm {
                    for &v in o.data() {
                        self.0 = self.0.max(v.abs());
                    }
                }
            }
        }
        let mut hm = AbsMax(0.0);
        mild.graph.run(&mild.eval[0], &mut hm).unwrap_ok();
        let mut he = AbsMax(0.0);
        extreme.graph.run(&extreme.eval[0], &mut he).unwrap_ok();
        assert!(he.0 > 5.0 * hm.0, "extreme {} vs mild {}", he.0, hm.0);
    }
}
