//! Computer-vision architecture families.
//!
//! Shapes and op mixes mirror the paper's CV workload list: plain
//! VGG-style stacks, ResNets, MobileNet/EfficientNet-style depthwise
//! models, DenseNet-style unfoldable-BatchNorm models, Inception-style
//! parallel branches, ViT, U-Net segmentation and detector heads. The
//! *distributional* knob is [`CvConfig::hostility`]: the
//! MobileNet/EfficientNet/ViT analogues get amplified norm gains, which is
//! what makes per-tensor INT8 struggle on those models in the paper
//! (Figure 4 calls out EfficientNet, MobileNetV3 and ViT by name).

use crate::families::common::{batchnorm_with_hostility, conv_bn_relu, CvConfig};
use crate::task::{CalibSource, Metric, Transform};
use crate::workload::{Workload, WorkloadSpec};
use ptq_metrics::Domain;
use ptq_nn::{Graph, GraphBuilder, NoopHook, UnwrapOk};
use ptq_tensor::ops::Conv2dParams;
use ptq_tensor::{Tensor, TensorRng};

/// Eval-set size for batched CV classification.
const EVAL_N: usize = 192;
/// Batch size for batched CV eval.
const EVAL_BATCH: usize = 48;
/// Calibration pool size.
const POOL_N: usize = 64;
/// Default calibration sample count.
const CALIB_N: usize = 64;
/// Relative eval noise (fraction of input std).
const EVAL_NOISE: f32 = 0.28;

/// Assemble a batched CV classification workload from a finished graph.
///
/// The synthetic "dataset" has real class structure: each of
/// `cfg.classes` classes is a *prototype image*, and samples are
/// noise-perturbed copies of their prototype (σ = [`EVAL_NOISE`]). The
/// head is re-wired as a nearest-anchor classifier whose anchors are the
/// prototypes' own features (see [`crate::anchor`]), so classes form
/// separated clusters in feature space with a Gaussian overlap tail —
/// the margin structure of a trained classifier. The FP32 baseline is the
/// clean model's accuracy on the cluster samples (<100 % from overlap),
/// and quantization error moves the decision boundaries, flipping the
/// near-boundary tail first.
pub fn cv_classification(name: &str, family: &str, mut graph: Graph, cfg: &CvConfig) -> Workload {
    let mut rng = TensorRng::seed(cfg.seed ^ 0xC1A5);
    let img_shape = [cfg.in_ch, cfg.img, cfg.img];
    let prototypes: Vec<Tensor> = (0..cfg.classes)
        .map(|_| rng.normal(&img_shape, 0.0, 1.0))
        .collect();
    let sample_of = |c: usize, rng: &mut TensorRng| -> Tensor {
        let noise = rng.normal(&img_shape, 0.0, EVAL_NOISE);
        prototypes[c].add(&noise)
    };
    let batch_of = |items: &[Tensor]| -> Tensor {
        Tensor::concat0(&items.iter().collect::<Vec<_>>()).reshape(&[
            items.len(),
            cfg.in_ch,
            cfg.img,
            cfg.img,
        ])
    };

    // Training-distribution pool for BN statistics and calibration data:
    // cluster samples, like the training set of a real model.
    let pool_items: Vec<Tensor> = (0..POOL_N)
        .map(|i| sample_of(i % cfg.classes, &mut rng))
        .collect();
    let source = CalibSource {
        pool: batch_of(&pool_items),
        noise: 0.1,
        batch: 32,
    };

    // "Trained" BatchNorm statistics: moments of the augmented training
    // distribution, as training with data augmentation would leave behind.
    // (This is why the paper's Figure 7 finds train-transform calibration
    // data more effective: it matches the distribution the running stats
    // were estimated on.)
    let init_batches = source.sample(160, Transform::Train, cfg.seed ^ 0xB117);
    crate::anchor::initialize_bn_stats(&mut graph, &init_batches, 2);
    // Trained weights balance input-channel contributions; re-estimate BN
    // statistics afterwards (see anchor::coadapt_convs).
    crate::anchor::coadapt_convs(&mut graph, &init_batches[..2.min(init_batches.len())]);
    crate::anchor::initialize_bn_stats(&mut graph, &init_batches, 2);

    // Eval set: EVAL_N cluster samples, labels = generating class.
    let mut labels = Vec::with_capacity(EVAL_N);
    let mut eval_items = Vec::with_capacity(EVAL_N);
    for i in 0..EVAL_N {
        let c = i % cfg.classes;
        labels.push(c);
        eval_items.push(sample_of(c, &mut rng));
    }
    let eval: Vec<Vec<Tensor>> = eval_items
        .chunks(EVAL_BATCH)
        .map(|chunk| vec![batch_of(chunk)])
        .collect();

    // Anchor head: anchors are the prototypes' own features; the centering
    // mean comes from the eval distribution.
    let head = crate::anchor::head_node(&graph);
    let mut probe = eval.clone();
    probe.push(vec![batch_of(&prototypes)]);
    let feats = crate::anchor::capture_features(&graph, &probe, head);
    let n_feat = feats.dim(0);
    let proto_rows: Vec<usize> = (n_feat - cfg.classes..n_feat).collect();
    crate::anchor::install_anchor_head_rows(&mut graph, head, &feats, &proto_rows);

    let calib = source.sample(CALIB_N, Transform::Train, cfg.seed ^ 0xCA11B);

    Workload::new(
        WorkloadSpec {
            name: name.to_string(),
            domain: Domain::Cv,
            family: family.to_string(),
        },
        graph,
        calib,
        eval,
        Metric::Top1 { labels },
        Some(source),
    )
}

/// Plain VGG-style stack: conv-relu blocks with occasional max-pool, no
/// BatchNorm.
pub fn vgg_like(cfg: &CvConfig) -> Workload {
    let mut rng = TensorRng::seed(cfg.seed);
    let mut b = GraphBuilder::new();
    let x = b.input();
    let mut cur = x;
    let mut cin = cfg.in_ch;
    let mut side = cfg.img;
    for d in 0..cfg.depth {
        let cout = cfg.width * (1 + d / 2);
        let w = b.param(rng.kaiming(&[cout, cin, 3, 3]));
        cur = b.conv2d(cur, w, None, Conv2dParams::same(3));
        cur = b.relu(cur);
        if d % 2 == 1 && side >= 4 {
            cur = b.max_pool(cur, 2);
            side /= 2;
        }
        cin = cout;
    }
    cur = b.global_avg_pool(cur);
    let wh = b.param(rng.kaiming(&[cfg.classes, cin]));
    let bh = b.param(rng.normal(&[cfg.classes], 0.0, 0.1));
    let out = b.linear(cur, wh, Some(bh));
    let g = b.finish(vec![out]);
    cv_classification(
        &format!("vgg_like_{}x{}", cfg.width, cfg.depth),
        "vgg_like",
        g,
        cfg,
    )
}

/// ResNet-style: conv-BN-ReLU stem, residual blocks, GAP head.
pub fn resnet_like(cfg: &CvConfig) -> Workload {
    let mut rng = TensorRng::seed(cfg.seed);
    let mut b = GraphBuilder::new();
    let x = b.input();
    let c = cfg.width;
    let mut cur = conv_bn_relu(&mut b, &mut rng, x, cfg.in_ch, c, 3, 1, cfg.hostility, 0);
    for d in 0..cfg.depth {
        // Residual branch: two conv-BN, add, relu.
        let w1 = b.param(rng.kaiming(&[c, c, 3, 3]));
        let h = b.conv2d(cur, w1, None, Conv2dParams::same(3));
        let h = batchnorm_with_hostility(&mut b, &mut rng, h, c, cfg.hostility, d + 1);
        let h = b.relu(h);
        let w2 = b.param(rng.kaiming(&[c, c, 3, 3]));
        let h = b.conv2d(h, w2, None, Conv2dParams::same(3));
        let h = batchnorm_with_hostility(&mut b, &mut rng, h, c, cfg.hostility, d + 1);
        let merged = b.add(cur, h);
        cur = b.relu(merged);
    }
    cur = b.global_avg_pool(cur);
    let wh = b.param(rng.kaiming(&[cfg.classes, c]));
    let bh = b.param(Tensor::zeros(&[cfg.classes]));
    let out = b.linear(cur, wh, Some(bh));
    let g = b.finish(vec![out]);
    cv_classification(
        &format!("resnet_like_{}x{}", cfg.width, cfg.depth),
        "resnet_like",
        g,
        cfg,
    )
}

/// MobileNet-style: depthwise-separable conv blocks with BatchNorm.
pub fn mobilenet_like(cfg: &CvConfig) -> Workload {
    let mut rng = TensorRng::seed(cfg.seed);
    let mut b = GraphBuilder::new();
    let x = b.input();
    let c = cfg.width;
    let mut cur = conv_bn_relu(&mut b, &mut rng, x, cfg.in_ch, c, 3, 1, cfg.hostility, 0);
    for d in 0..cfg.depth {
        // Depthwise 3x3.
        let wd = b.param(rng.kaiming(&[c, 1, 3, 3]));
        let h = b.depthwise_conv2d(cur, wd, None, Conv2dParams::same(3));
        let h = batchnorm_with_hostility(&mut b, &mut rng, h, c, cfg.hostility, 2 * d + 1);
        let h = b.relu(h);
        // Pointwise 1x1.
        let wp = b.param(rng.kaiming(&[c, c, 1, 1]));
        let h = b.conv2d(h, wp, None, Conv2dParams::default());
        let h = batchnorm_with_hostility(&mut b, &mut rng, h, c, cfg.hostility, 2 * d + 2);
        cur = b.relu(h);
    }
    cur = b.global_avg_pool(cur);
    let wh = b.param(rng.kaiming(&[cfg.classes, c]));
    let bh = b.param(Tensor::zeros(&[cfg.classes]));
    let out = b.linear(cur, wh, Some(bh));
    let g = b.finish(vec![out]);
    cv_classification(
        &format!("mobilenet_like_{}x{}", cfg.width, cfg.depth),
        "mobilenet_like",
        g,
        cfg,
    )
}

/// EfficientNet-style: depthwise blocks with SiLU activations and a
/// squeeze-excite-ish channel gate (sigmoid of pooled features).
pub fn efficientnet_like(cfg: &CvConfig) -> Workload {
    let mut rng = TensorRng::seed(cfg.seed);
    let mut b = GraphBuilder::new();
    let x = b.input();
    let c = cfg.width;
    let w0 = b.param(rng.kaiming(&[c, cfg.in_ch, 3, 3]));
    let mut cur = b.conv2d(x, w0, None, Conv2dParams::same(3));
    cur = batchnorm_with_hostility(&mut b, &mut rng, cur, c, cfg.hostility, 0);
    cur = b.silu(cur);
    for d in 0..cfg.depth {
        let wd = b.param(rng.kaiming(&[c, 1, 3, 3]));
        let h = b.depthwise_conv2d(cur, wd, None, Conv2dParams::same(3));
        let h = batchnorm_with_hostility(&mut b, &mut rng, h, c, cfg.hostility, d + 1);
        let h = b.silu(h);
        let wp = b.param(rng.kaiming(&[c, c, 1, 1]));
        let h = b.conv2d(h, wp, None, Conv2dParams::default());
        let h = batchnorm_with_hostility(&mut b, &mut rng, h, c, cfg.hostility, d + 2);
        let h = b.silu(h);
        cur = b.add(cur, h); // MBConv-style skip
    }
    cur = b.global_avg_pool(cur);
    let wh = b.param(rng.kaiming(&[cfg.classes, c]));
    let bh = b.param(Tensor::zeros(&[cfg.classes]));
    let out = b.linear(cur, wh, Some(bh));
    let g = b.finish(vec![out]);
    cv_classification(
        &format!("efficientnet_like_{}x{}", cfg.width, cfg.depth),
        "efficientnet_like",
        g,
        cfg,
    )
}

/// DenseNet-style: each block's output is *added* into a running feature
/// accumulator whose BatchNorm cannot be folded into a preceding conv —
/// the paper's footnote-2 case for extended-scheme BatchNorm quantization.
pub fn densenet_like(cfg: &CvConfig) -> Workload {
    let mut rng = TensorRng::seed(cfg.seed);
    let mut b = GraphBuilder::new();
    let x = b.input();
    let c = cfg.width;
    let mut cur = conv_bn_relu(&mut b, &mut rng, x, cfg.in_ch, c, 3, 1, cfg.hostility, 0);
    let mut acc = cur;
    for d in 0..cfg.depth {
        let w = b.param(rng.kaiming(&[c, c, 3, 3]));
        let h = b.conv2d(cur, w, None, Conv2dParams::same(3));
        let h = b.relu(h);
        acc = b.add(acc, h);
        // BatchNorm on the *sum* — not foldable into any single conv.
        acc = batchnorm_with_hostility(&mut b, &mut rng, acc, c, cfg.hostility, d + 1);
        cur = acc;
    }
    let g_feat = b.global_avg_pool(acc);
    let wh = b.param(rng.kaiming(&[cfg.classes, c]));
    let bh = b.param(Tensor::zeros(&[cfg.classes]));
    let out = b.linear(g_feat, wh, Some(bh));
    let g = b.finish(vec![out]);
    cv_classification(
        &format!("densenet_like_{}x{}", cfg.width, cfg.depth),
        "densenet_like",
        g,
        cfg,
    )
}

/// Inception-style: parallel 1×1 and 3×3 branches merged by Add.
pub fn inception_like(cfg: &CvConfig) -> Workload {
    let mut rng = TensorRng::seed(cfg.seed);
    let mut b = GraphBuilder::new();
    let x = b.input();
    let c = cfg.width;
    let mut cur = conv_bn_relu(&mut b, &mut rng, x, cfg.in_ch, c, 3, 1, cfg.hostility, 0);
    for d in 0..cfg.depth {
        let w1 = b.param(rng.kaiming(&[c, c, 1, 1]));
        let b1 = b.conv2d(cur, w1, None, Conv2dParams::default());
        let b1 = b.relu(b1);
        let w3 = b.param(rng.kaiming(&[c, c, 3, 3]));
        let b3 = b.conv2d(cur, w3, None, Conv2dParams::same(3));
        let b3 = b.relu(b3);
        let merged = b.add(b1, b3);
        cur = batchnorm_with_hostility(&mut b, &mut rng, merged, c, cfg.hostility, d + 1);
    }
    cur = b.global_avg_pool(cur);
    let wh = b.param(rng.kaiming(&[cfg.classes, c]));
    let bh = b.param(Tensor::zeros(&[cfg.classes]));
    let out = b.linear(cur, wh, Some(bh));
    let g = b.finish(vec![out]);
    cv_classification(
        &format!("inception_like_{}x{}", cfg.width, cfg.depth),
        "inception_like",
        g,
        cfg,
    )
}

/// ViT-style: patch embedding conv, transformer encoder blocks over the
/// patch sequence, mean-pooled classification head. Runs one image per
/// forward (the patch reshape is static), like the NLP workloads.
pub fn vit_like(cfg: &CvConfig, nlp_outlier_gain: f32) -> Workload {
    use crate::families::common::{transformer_block, NlpConfig};
    let patch = 4;
    assert_eq!(cfg.img % patch, 0, "image must divide into patches");
    let p = cfg.img / patch;
    let seq = p * p;
    let d = cfg.width;
    let tcfg = NlpConfig {
        vocab: 0,
        seq,
        d,
        heads: if d.is_multiple_of(4) { 4 } else { 2 },
        layers: cfg.depth,
        ffn_mult: 2,
        seed: cfg.seed,
        outlier_gain: nlp_outlier_gain,
        outlier_channels: 1,
        gamma_sigma: 0.2,
    };
    let mut rng = TensorRng::seed(cfg.seed);
    let mut b = GraphBuilder::new();
    let x = b.input(); // [1, in_ch, img, img]
    let wp = b.param(rng.kaiming(&[d, cfg.in_ch, patch, patch]));
    let e = b.conv2d(
        x,
        wp,
        None,
        Conv2dParams {
            stride: patch,
            padding: 0,
        },
    ); // [1, d, p, p]
    let e = b.reshape(e, &[d, seq]);
    let mut cur = b.permute(e, &[1, 0]); // [seq, d]
    let pos = b.param(rng.normal(&[seq, d], 0.0, 0.3));
    cur = b.add_param(cur, pos);
    for l in 0..tcfg.layers {
        cur = transformer_block(&mut b, &mut rng, cur, &tcfg, l, false);
    }
    let pooled = b.mean_rows(cur); // [1, d]
    let wh = b.param(rng.kaiming(&[cfg.classes, d]));
    let bh = b.param(Tensor::zeros(&[cfg.classes]));
    let out = b.linear(pooled, wh, Some(bh));
    let mut graph = b.finish(vec![out]);

    // Per-sample prototype-cluster task (see `cv_classification`):
    // anchors are the class prototypes' own features.
    let mut rng = TensorRng::seed(cfg.seed ^ 0xC1A5);
    let n = 160;
    let shape = [1, cfg.in_ch, cfg.img, cfg.img];
    let prototypes: Vec<Tensor> = (0..cfg.classes)
        .map(|_| rng.normal(&shape, 0.0, 1.0))
        .collect();
    let mut labels = Vec::with_capacity(n);
    let mut eval = Vec::with_capacity(n);
    let mut calib = Vec::new();
    for i in 0..n {
        let c = i % cfg.classes;
        labels.push(c);
        let noise = rng.normal(&shape, 0.0, EVAL_NOISE);
        eval.push(vec![prototypes[c].add(&noise)]);
        if i < 24 {
            let noise = rng.normal(&shape, 0.0, EVAL_NOISE);
            calib.push(vec![prototypes[(i * 3 + 1) % cfg.classes].add(&noise)]);
        }
    }
    let head = crate::anchor::head_node(&graph);
    let mut probe = eval.clone();
    probe.extend(prototypes.iter().map(|p| vec![p.clone()]));
    let feats = crate::anchor::capture_features(&graph, &probe, head);
    let n_feat = feats.dim(0);
    let proto_rows: Vec<usize> = (n_feat - cfg.classes..n_feat).collect();
    crate::anchor::install_anchor_head_rows(&mut graph, head, &feats, &proto_rows);
    Workload::new(
        WorkloadSpec {
            name: format!("vit_like_{}x{}", cfg.width, cfg.depth),
            domain: Domain::Cv,
            family: "vit_like".to_string(),
        },
        graph,
        calib,
        eval,
        Metric::Top1 { labels },
        None,
    )
}

/// U-Net-style encoder/decoder with skip connections; dense per-pixel
/// classification (the Carvana-masking analogue).
pub fn unet_like(cfg: &CvConfig) -> Workload {
    let mut rng = TensorRng::seed(cfg.seed);
    let mut b = GraphBuilder::new();
    let x = b.input();
    let c = cfg.width;
    // Encoder level 0.
    let e0 = conv_bn_relu(&mut b, &mut rng, x, cfg.in_ch, c, 3, 1, cfg.hostility, 0);
    // Down to level 1.
    let w_dn = b.param(rng.kaiming(&[2 * c, c, 3, 3]));
    let e1 = b.conv2d(
        e0,
        w_dn,
        None,
        Conv2dParams {
            stride: 2,
            padding: 1,
        },
    );
    let e1 = batchnorm_with_hostility(&mut b, &mut rng, e1, 2 * c, cfg.hostility, 1);
    let e1 = b.relu(e1);
    // Bottleneck convs.
    let mut bot = e1;
    for d in 0..cfg.depth {
        let w = b.param(rng.kaiming(&[2 * c, 2 * c, 3, 3]));
        bot = b.conv2d(bot, w, None, Conv2dParams::same(3));
        bot = batchnorm_with_hostility(&mut b, &mut rng, bot, 2 * c, cfg.hostility, d + 2);
        bot = b.relu(bot);
    }
    // Up + skip.
    let up = b.upsample2x(bot);
    let w_up = b.param(rng.kaiming(&[c, 2 * c, 3, 3]));
    let u0 = b.conv2d(up, w_up, None, Conv2dParams::same(3));
    let u0 = b.relu(u0);
    let merged = b.add(u0, e0);
    // Per-pixel classifier.
    let w_out = b.param(rng.kaiming(&[2, c, 1, 1]));
    let out = b.conv2d(merged, w_out, None, Conv2dParams::default());
    let mut graph = b.finish(vec![out]);

    // Dense labels from FP32 on clean inputs.
    let mut rng = TensorRng::seed(cfg.seed ^ 0xC1A5);
    let n = 24;
    let pool = rng.normal(&[POOL_N, cfg.in_ch, cfg.img, cfg.img], 0.0, 1.0);
    let source = CalibSource {
        pool,
        noise: 0.1,
        batch: 16,
    };
    let init_batches = source.sample(128, Transform::Train, cfg.seed ^ 0xB117);
    crate::anchor::initialize_bn_stats(&mut graph, &init_batches, 2);
    crate::anchor::coadapt_convs(&mut graph, &init_batches[..2.min(init_batches.len())]);
    crate::anchor::initialize_bn_stats(&mut graph, &init_batches, 2);
    let clean = rng.normal(&[n, cfg.in_ch, cfg.img, cfg.img], 0.0, 1.0);
    let ref_out = graph.infer(std::slice::from_ref(&clean)).unwrap_ok();
    let labels = pixel_labels(&ref_out[0]);
    let noise = rng.normal(clean.shape(), 0.0, EVAL_NOISE);
    let eval = vec![vec![clean.add(&noise)]];
    let calib = source.sample(32, Transform::Train, cfg.seed ^ 0xCA11B);
    Workload::new(
        WorkloadSpec {
            name: format!("unet_like_{}x{}", cfg.width, cfg.depth),
            domain: Domain::Cv,
            family: "unet_like".to_string(),
        },
        graph,
        calib,
        eval,
        Metric::PixelTop1 { labels },
        Some(source),
    )
}

/// Detector-style: conv backbone with stride-2 downsampling and a 1×1
/// per-cell classification head (the YOLO-grid analogue).
pub fn detector_like(cfg: &CvConfig) -> Workload {
    let mut rng = TensorRng::seed(cfg.seed);
    let mut b = GraphBuilder::new();
    let x = b.input();
    let c = cfg.width;
    let mut cur = conv_bn_relu(&mut b, &mut rng, x, cfg.in_ch, c, 3, 1, cfg.hostility, 0);
    let w_dn = b.param(rng.kaiming(&[c, c, 3, 3]));
    cur = b.conv2d(
        cur,
        w_dn,
        None,
        Conv2dParams {
            stride: 2,
            padding: 1,
        },
    );
    cur = b.relu(cur);
    for d in 0..cfg.depth {
        let w = b.param(rng.kaiming(&[c, c, 3, 3]));
        cur = b.conv2d(cur, w, None, Conv2dParams::same(3));
        cur = batchnorm_with_hostility(&mut b, &mut rng, cur, c, cfg.hostility, d + 1);
        cur = b.relu(cur);
    }
    let w_head = b.param(rng.kaiming(&[cfg.classes, c, 1, 1]));
    let out = b.conv2d(cur, w_head, None, Conv2dParams::default());
    let mut graph = b.finish(vec![out]);

    let mut rng = TensorRng::seed(cfg.seed ^ 0xC1A5);
    let n = 32;
    let pool = rng.normal(&[POOL_N, cfg.in_ch, cfg.img, cfg.img], 0.0, 1.0);
    let source = CalibSource {
        pool,
        noise: 0.1,
        batch: 16,
    };
    let init_batches = source.sample(128, Transform::Train, cfg.seed ^ 0xB117);
    crate::anchor::initialize_bn_stats(&mut graph, &init_batches, 2);
    crate::anchor::coadapt_convs(&mut graph, &init_batches[..2.min(init_batches.len())]);
    crate::anchor::initialize_bn_stats(&mut graph, &init_batches, 2);
    let clean = rng.normal(&[n, cfg.in_ch, cfg.img, cfg.img], 0.0, 1.0);
    let labels = pixel_labels(&graph.infer(std::slice::from_ref(&clean)).unwrap_ok()[0]);
    let noise = rng.normal(clean.shape(), 0.0, EVAL_NOISE);
    let eval = vec![vec![clean.add(&noise)]];
    let calib = source.sample(32, Transform::Train, cfg.seed ^ 0xCA11B);
    Workload::new(
        WorkloadSpec {
            name: format!("detector_like_{}x{}", cfg.width, cfg.depth),
            domain: Domain::Cv,
            family: "detector_like".to_string(),
        },
        graph,
        calib,
        eval,
        Metric::PixelTop1 { labels },
        Some(source),
    )
}

/// Per-pixel argmax labels from a `[n, classes, h, w]` logit tensor.
fn pixel_labels(logits: &Tensor) -> Vec<usize> {
    let (n, c, h, w) = (logits.dim(0), logits.dim(1), logits.dim(2), logits.dim(3));
    let mut labels = Vec::with_capacity(n * h * w);
    for ni in 0..n {
        for y in 0..h {
            for x in 0..w {
                let mut best = 0;
                let mut best_v = f32::NEG_INFINITY;
                for ci in 0..c {
                    let v = logits.at(&[ni, ci, y, x]);
                    if v > best_v {
                        best_v = v;
                        best = ci;
                    }
                }
                labels.push(best);
            }
        }
    }
    labels
}

/// Sanity hook used by tests: FP32 re-evaluation must match the stored
/// baseline.
pub fn fp32_rescore(w: &Workload) -> f64 {
    w.evaluate(&mut NoopHook).unwrap_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(seed: u64) -> CvConfig {
        CvConfig {
            img: 8,
            width: 6,
            depth: 2,
            classes: 5,
            seed,
            ..CvConfig::default()
        }
    }

    #[test]
    fn all_cv_families_build_and_score() {
        let cfg = small_cfg(1);
        for w in [
            vgg_like(&cfg),
            resnet_like(&cfg),
            mobilenet_like(&cfg),
            efficientnet_like(&cfg),
            densenet_like(&cfg),
            inception_like(&cfg),
            unet_like(&cfg),
            detector_like(&cfg),
        ] {
            assert!(
                w.fp32_score > 0.3 && w.fp32_score <= 1.0,
                "{} fp32 {}",
                w.spec.name,
                w.fp32_score
            );
            assert_eq!(fp32_rescore(&w), w.fp32_score, "{}", w.spec.name);
        }
    }

    #[test]
    fn vit_builds_and_scores() {
        let cfg = CvConfig {
            img: 8,
            width: 16,
            depth: 1,
            classes: 5,
            seed: 2,
            ..CvConfig::default()
        };
        let w = vit_like(&cfg, 10.0);
        assert!(w.fp32_score > 0.3, "fp32 {}", w.fp32_score);
        assert!(!w.has_batchnorm());
    }

    #[test]
    fn bn_families_have_batchnorm() {
        let cfg = small_cfg(3);
        assert!(resnet_like(&cfg).has_batchnorm());
        assert!(mobilenet_like(&cfg).has_batchnorm());
        assert!(!vgg_like(&cfg).has_batchnorm());
    }

    #[test]
    fn hostility_raises_activation_absmax() {
        let benign = resnet_like(&small_cfg(4));
        let hostile = resnet_like(&CvConfig {
            hostility: 30.0,
            ..small_cfg(4)
        });
        // Probe: run one eval batch and track the global activation absmax.
        struct AbsMax(f32);
        impl ptq_nn::ExecHook for AbsMax {
            fn after_node(&mut self, _n: &ptq_nn::Node, o: &mut Tensor) {
                for &v in o.data() {
                    self.0 = self.0.max(v.abs());
                }
            }
        }
        let mut hb = AbsMax(0.0);
        benign.graph.run(&benign.eval[0], &mut hb).unwrap_ok();
        let mut hh = AbsMax(0.0);
        hostile.graph.run(&hostile.eval[0], &mut hh).unwrap_ok();
        assert!(hh.0 > 3.0 * hb.0, "hostile {} vs benign {}", hh.0, hb.0);
    }

    #[test]
    fn workload_is_deterministic() {
        let a = resnet_like(&small_cfg(7));
        let b = resnet_like(&small_cfg(7));
        assert_eq!(a.fp32_score, b.fp32_score);
        assert_eq!(a.graph.param_count(), b.graph.param_count());
    }
}
