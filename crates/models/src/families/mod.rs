//! Architecture family builders.
//!
//! Each family mirrors a class of networks from the paper's workload list
//! (§4.1). Builders produce complete [`crate::Workload`]s: graph, seeded
//! weights with the family's characteristic distributions, synthetic
//! calibration/eval data and a task metric.

pub mod common;
pub mod cv;
pub mod misc;
pub mod nlp;

pub use common::{CvConfig, Head, NlpConfig};
