//! Anchor heads: make synthetic tasks genuinely input-dependent.
//!
//! A randomly-initialized backbone followed by global pooling produces
//! features whose *constant* component (the dataset-mean feature) dwarfs
//! the input-dependent part, so a random linear head predicts almost the
//! same class for every input — a degenerate task where quantization
//! either changes nothing or flips everything.
//!
//! The fix: after building the backbone, re-wire the head as a
//! **nearest-anchor classifier in the model's own feature space**. Class
//! `c`'s logit becomes `(f − μ)·â_c`, where `μ` is the mean feature over a
//! probe set and `â_c` is the unit-normalized centered feature of a probe
//! sample chosen as class `c`'s anchor. Logits are then driven entirely by
//! the input-dependent feature component, margins are smooth, and small
//! numeric perturbations (eval noise, quantization error) flip exactly the
//! near-margin samples — the mechanism behind realistic accuracy
//! degradation.

use ptq_nn::{ExecHook, Graph, Node, NodeId, Op, UnwrapOk};
use ptq_tensor::{Tensor, TensorRng};

/// Capture the activation input of one node across runs.
#[derive(Debug)]
pub struct CaptureInput {
    /// Node whose input is captured.
    pub node: NodeId,
    /// Captured input tensors, one per run (2-D, rows accumulated).
    pub rows: Vec<Tensor>,
}

impl CaptureInput {
    /// Capture the input of `node`.
    pub fn new(node: NodeId) -> Self {
        CaptureInput {
            node,
            rows: Vec::new(),
        }
    }

    /// All captured rows stacked into `[n, d]`.
    ///
    /// # Panics
    ///
    /// Panics if nothing was captured.
    pub fn stacked(&self) -> Tensor {
        assert!(!self.rows.is_empty(), "no features captured");
        Tensor::concat0(&self.rows.iter().collect::<Vec<_>>())
    }
}

impl ExecHook for CaptureInput {
    fn before_node(&mut self, node: &Node, inputs: &mut [Tensor]) {
        if node.id == self.node {
            let x = &inputs[0];
            assert_eq!(x.ndim(), 2, "captured feature must be 2-D");
            self.rows.push(x.clone());
        }
    }
}

/// Run `batches` through the graph, returning the stacked `[n, d]` inputs
/// of `head_node`.
pub fn capture_features(graph: &Graph, batches: &[Vec<Tensor>], head_node: NodeId) -> Tensor {
    let mut cap = CaptureInput::new(head_node);
    for inputs in batches {
        graph.run(inputs, &mut cap).unwrap_ok();
    }
    cap.stacked()
}

/// The id of the last Linear node (the conventional task head).
///
/// # Panics
///
/// Panics if the graph has no Linear node.
pub fn head_node(graph: &Graph) -> NodeId {
    *graph
        .nodes_of_class(ptq_nn::OpClass::Linear)
        .last()
        .expect("graph has a Linear head")
}

/// Per-dimension mean and standard deviation of a `[n, d]` feature set.
/// σ is floored to a small fraction of the feature scale so dead
/// dimensions do not explode the whitened space.
fn feature_moments_1d(features: &Tensor) -> (Vec<f32>, Vec<f32>) {
    let (n, d) = (features.dim(0), features.dim(1));
    let mut mu = vec![0.0f32; d];
    let mut sq = vec![0.0f32; d];
    for i in 0..n {
        for j in 0..d {
            let v = features.at(&[i, j]);
            mu[j] += v;
            sq[j] += v * v;
        }
    }
    let mut sigma = vec![0.0f32; d];
    let mut max_sigma = 0.0f32;
    for j in 0..d {
        mu[j] /= n as f32;
        sigma[j] = (sq[j] / n as f32 - mu[j] * mu[j]).max(0.0).sqrt();
        max_sigma = max_sigma.max(sigma[j]);
    }
    let floor = (max_sigma * 1e-3).max(1e-6);
    for s in &mut sigma {
        *s = s.max(floor);
    }
    (mu, sigma)
}

/// Mean vector and regularized covariance inverse of a `[n, d]` feature
/// set: `(μ, Σ_reg⁻¹, Σ_reg)` with `Σ_reg = Σ + λI`, `λ = 0.05·mean(diag Σ)`.
///
/// The inverse is what a *trained* linear head effectively encodes: it
/// decorrelates the feature space, so a single dominant (outlier-
/// amplified) direction cannot drown the discriminative components.
#[allow(clippy::type_complexity, clippy::needless_range_loop)]
fn covariance_inverse(features: &Tensor) -> (Vec<f32>, Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let (n, d) = (features.dim(0), features.dim(1));
    let mut mu = vec![0.0f32; d];
    for i in 0..n {
        for j in 0..d {
            mu[j] += features.at(&[i, j]);
        }
    }
    for m in &mut mu {
        *m /= n as f32;
    }
    let mut cov = vec![vec![0.0f64; d]; d];
    for i in 0..n {
        let row: Vec<f64> = (0..d)
            .map(|j| (features.at(&[i, j]) - mu[j]) as f64)
            .collect();
        for a in 0..d {
            for b in a..d {
                cov[a][b] += row[a] * row[b];
            }
        }
    }
    let mut trace = 0.0f64;
    for a in 0..d {
        for b in a..d {
            cov[a][b] /= n as f64;
            cov[b][a] = cov[a][b];
        }
        trace += cov[a][a];
    }
    let lambda = (trace / d as f64) * 0.05 + 1e-9;
    for a in 0..d {
        cov[a][a] += lambda;
    }
    let inv = invert_spd(&cov);
    (mu, inv, cov)
}

/// Gauss-Jordan inverse of a (regularized, symmetric positive-definite)
/// matrix. Panics if the matrix is singular despite regularization.
fn invert_spd(m: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let d = m.len();
    let mut a: Vec<Vec<f64>> = m.to_vec();
    let mut inv: Vec<Vec<f64>> = (0..d)
        .map(|i| (0..d).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
        .collect();
    for col in 0..d {
        // Partial pivot.
        let mut piv = col;
        for r in col + 1..d {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        a.swap(col, piv);
        inv.swap(col, piv);
        let p = a[col][col];
        assert!(
            p.abs() > 1e-12,
            "singular covariance despite regularization"
        );
        for j in 0..d {
            a[col][j] /= p;
            inv[col][j] /= p;
        }
        for r in 0..d {
            if r == col {
                continue;
            }
            let f = a[r][col];
            if f == 0.0 {
                continue;
            }
            for j in 0..d {
                a[r][j] -= f * a[col][j];
                inv[r][j] -= f * inv[col][j];
            }
        }
    }
    inv
}

/// Build one Mahalanobis anchor row: `w = Σ⁻¹(a − μ)`, normalized so the
/// logit has unit variance under the feature distribution
/// (`wᵀΣw = 1`); bias places the origin at `μ`.
fn mahalanobis_anchor_row(
    anchor: &[f32],
    mu: &[f32],
    inv: &[Vec<f64>],
    cov: &[Vec<f64>],
) -> (Vec<f32>, f32) {
    let d = anchor.len();
    let diff: Vec<f64> = (0..d).map(|j| (anchor[j] - mu[j]) as f64).collect();
    let mut u = vec![0.0f64; d];
    for a in 0..d {
        for b in 0..d {
            u[a] += inv[a][b] * diff[b];
        }
    }
    // Normalize to unit logit variance: wᵀ Σ w = 1.
    let mut var = 0.0f64;
    for a in 0..d {
        for b in 0..d {
            var += u[a] * cov[a][b] * u[b];
        }
    }
    let s = 1.0 / var.sqrt().max(1e-9);
    let w: Vec<f32> = u.iter().map(|&x| (x * s) as f32).collect();
    let bias = -w.iter().zip(mu).map(|(wi, mi)| wi * mi).sum::<f32>();
    (w, bias)
}

/// Replace `head_node`'s weight/bias so the `k` output logits are
/// nearest-anchor scores over the captured `features` (`[n, d]`).
///
/// Anchors are `k` probe rows chosen at random (deterministically from
/// `seed`). Features are **whitened per dimension** (centered by the
/// probe mean, divided by the probe std) before the nearest-anchor dot
/// product — the discriminative reweighting a trained head provides.
/// Whitening is what lets a model with amplified outlier channels keep a
/// healthy FP32 baseline while those same channels still stretch
/// per-tensor INT8 activation grids (the paper's core mechanism).
///
/// # Panics
///
/// Panics if the head is not a `Linear` with a bias, if `features` has
/// fewer than `k` rows, or if the head width does not equal `k`.
pub fn install_anchor_head(
    graph: &mut Graph,
    head: NodeId,
    features: &Tensor,
    k: usize,
    seed: u64,
) {
    let (n, d) = (features.dim(0), features.dim(1));
    assert!(n >= k, "need at least {k} probe rows, got {n}");
    let (wid, bid) = head_params(graph, head);
    let w_shape = graph.param(wid).expect("head weight").shape().to_vec();
    assert_eq!(w_shape, vec![k, d], "head weight must be [{k}, {d}]");

    let (mu, inv, cov) = covariance_inverse(features);

    // Pick k distinct anchor rows.
    let mut rng = TensorRng::seed(seed);
    let mut picked: Vec<usize> = Vec::with_capacity(k);
    while picked.len() < k {
        let c = rng.below(n);
        if !picked.contains(&c) {
            picked.push(c);
        }
    }

    let mut w = Tensor::zeros(&[k, d]);
    let mut b = Tensor::zeros(&[k]);
    for (c, &row) in picked.iter().enumerate() {
        let anchor: Vec<f32> = (0..d).map(|j| features.at(&[row, j])).collect();
        let (wr, bias) = mahalanobis_anchor_row(&anchor, &mu, &inv, &cov);
        w.data_mut()[c * d..(c + 1) * d].copy_from_slice(&wr);
        b.data_mut()[c] = bias;
    }
    graph.set_param(wid, w).unwrap_ok();
    graph.set_param(bid, b).unwrap_ok();
}

/// Replace a `[1, d] → [1, 1]` regression head with a centered random
/// unit direction so the scalar output tracks the input-dependent feature
/// component.
///
/// # Panics
///
/// Panics if the head is not a 1-wide `Linear` with a bias.
pub fn install_regression_head(graph: &mut Graph, head: NodeId, features: &Tensor, seed: u64) {
    let (n, d) = (features.dim(0), features.dim(1));
    let (wid, bid) = head_params(graph, head);
    assert_eq!(
        graph.param(wid).expect("head weight").shape(),
        &[1, d],
        "regression head must be [1, {d}]"
    );
    let (mu, sigma) = feature_moments_1d(features);
    // Random whitened direction, scaled so outputs have roughly unit
    // variance over the probe features.
    let mut rng = TensorRng::seed(seed);
    let dir = rng.normal(&[d], 0.0, 1.0);
    let mut v: Vec<f32> = (0..d).map(|j| dir.data()[j] / sigma[j]).collect();
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
    for x in &mut v {
        *x /= norm;
    }
    // Project probe features to estimate the spread; rescale to ~unit std.
    let mut proj: Vec<f32> = Vec::with_capacity(n);
    for i in 0..n {
        let p: f32 = (0..d).map(|j| (features.at(&[i, j]) - mu[j]) * v[j]).sum();
        proj.push(p);
    }
    let pm = proj.iter().sum::<f32>() / n as f32;
    let pv = proj.iter().map(|p| (p - pm).powi(2)).sum::<f32>() / n as f32;
    let scale = 1.0 / pv.sqrt().max(1e-6);
    for x in &mut v {
        *x *= scale;
    }
    let bias = -v.iter().zip(&mu).map(|(vi, mi)| vi * mi).sum::<f32>();
    graph
        .set_param(wid, Tensor::from_vec(v, &[1, d]))
        .unwrap_ok();
    graph
        .set_param(bid, Tensor::from_slice(&[bias]))
        .unwrap_ok();
}

/// Like [`install_anchor_head`], but with explicitly chosen anchor rows
/// (e.g. the features of class *prototype* inputs) while the centering
/// mean `μ` is still estimated from the full feature set.
///
/// # Panics
///
/// Panics on the same conditions as [`install_anchor_head`], or if any
/// row index is out of bounds.
pub fn install_anchor_head_rows(
    graph: &mut Graph,
    head: NodeId,
    features: &Tensor,
    rows: &[usize],
) {
    let (n, d) = (features.dim(0), features.dim(1));
    let k = rows.len();
    let (wid, bid) = head_params(graph, head);
    let w_shape = graph.param(wid).expect("head weight").shape().to_vec();
    assert_eq!(w_shape, vec![k, d], "head weight must be [{k}, {d}]");
    let (mu, inv, cov) = covariance_inverse(features);
    let mut w = Tensor::zeros(&[k, d]);
    let mut b = Tensor::zeros(&[k]);
    for (c, &row) in rows.iter().enumerate() {
        assert!(row < n, "anchor row {row} out of bounds ({n})");
        let anchor: Vec<f32> = (0..d).map(|j| features.at(&[row, j])).collect();
        let (wr, bias) = mahalanobis_anchor_row(&anchor, &mu, &inv, &cov);
        w.data_mut()[c * d..(c + 1) * d].copy_from_slice(&wr);
        b.data_mut()[c] = bias;
    }
    graph.set_param(wid, w).unwrap_ok();
    graph.set_param(bid, b).unwrap_ok();
}

/// Initialize BatchNorm running statistics from the network's *actual*
/// FP32 activation moments on clean data — what training would have left
/// behind. Without this, the synthetic "running stats" are arbitrary and
/// the PTQ BatchNorm-calibration step would *change* the reference
/// function rather than correct a quantization-induced shift.
///
/// BatchNorms are fixed **sequentially in execution order** — a BN's
/// correct statistics depend on every earlier BN already carrying its
/// final statistics (train-mode BN gets this for free by normalizing with
/// batch stats; in inference-mode emulation we need one pass per BN). The
/// `iterations` argument is accepted for API stability but the
/// per-BN sequential schedule always runs to full consistency.
pub fn initialize_bn_stats(graph: &mut Graph, batches: &[Vec<Tensor>], iterations: usize) {
    use ptq_nn::OpClass;
    use std::collections::HashMap;

    #[derive(Default)]
    struct Moments {
        acc: HashMap<NodeId, (Vec<f64>, Vec<f64>, f64)>,
    }
    impl ExecHook for Moments {
        fn before_node(&mut self, node: &Node, inputs: &mut [Tensor]) {
            if node.op.class() != OpClass::BatchNorm {
                return;
            }
            let x = &inputs[0];
            let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
            let e = self
                .acc
                .entry(node.id)
                .or_insert_with(|| (vec![0.0; c], vec![0.0; c], 0.0));
            let data = x.data();
            for ni in 0..n {
                for ci in 0..c {
                    let base = (ni * c + ci) * h * w;
                    for &v in &data[base..base + h * w] {
                        e.0[ci] += v as f64;
                        e.1[ci] += (v as f64) * (v as f64);
                    }
                }
            }
            e.2 += (n * h * w) as f64;
        }
    }

    let _ = iterations;
    let bn_nodes = graph.nodes_of_class(OpClass::BatchNorm);
    // Fix one BN per pass, in execution order: by the time BN_k is
    // measured, BN_0..k-1 already carry their final statistics, so the
    // measurement is exact.
    for &target in &bn_nodes {
        let mut hook = Moments::default();
        for inputs in batches {
            graph.run(inputs, &mut hook).unwrap_ok();
        }
        let Some((sum, sq, count)) = hook.acc.get(&target) else {
            continue;
        };
        if *count == 0.0 {
            continue;
        }
        let Op::BatchNorm { mean, var, .. } = &graph.nodes()[target].op else {
            continue;
        };
        let (mid, vid) = (*mean, *var);
        let m: Vec<f32> = sum.iter().map(|&s| (s / count) as f32).collect();
        let v: Vec<f32> = m
            .iter()
            .zip(sq)
            .map(|(&mi, &s)| ((s / count) - (mi as f64) * (mi as f64)).max(1e-6) as f32)
            .collect();
        graph.set_param(mid, Tensor::from_slice(&m)).unwrap_ok();
        graph.set_param(vid, Tensor::from_slice(&v)).unwrap_ok();
    }
}

/// Co-adapt convolution weights to their inputs' per-channel magnitudes,
/// as training would: measure each Conv2d's input-channel absmax over
/// `batches`, then rescale the weight's input-channel slices by
/// `median/|mag|` (clamped). Outlier channels keep their large
/// *activations* (what stretches per-tensor INT8 grids) but no longer
/// dominate every output (which would turn activation outliers into a
/// pure weight-precision contest no small model can win).
///
/// Call between two [`initialize_bn_stats`] passes so downstream BatchNorm
/// statistics are re-estimated for the rescaled weights.
pub fn coadapt_convs(graph: &mut Graph, batches: &[Vec<Tensor>]) {
    use crate::families::common::coadapt_scales;
    use ptq_nn::OpClass;
    use std::collections::HashMap;

    #[derive(Default)]
    struct Cap {
        mags: HashMap<NodeId, Vec<f32>>,
    }
    impl ExecHook for Cap {
        #[allow(clippy::needless_range_loop)]
        fn before_node(&mut self, node: &Node, inputs: &mut [Tensor]) {
            if node.op.class() != OpClass::Conv2d {
                return;
            }
            let x = &inputs[0];
            let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
            let e = self.mags.entry(node.id).or_insert_with(|| vec![0.0; c]);
            let data = x.data();
            for ni in 0..n {
                for ci in 0..c {
                    let base = (ni * c + ci) * h * w;
                    for &v in &data[base..base + h * w] {
                        e[ci] = e[ci].max(v.abs());
                    }
                }
            }
        }
    }

    let mut cap = Cap::default();
    for inputs in batches {
        graph.run(inputs, &mut cap).unwrap_ok();
    }
    let updates: Vec<(NodeId, Vec<f32>)> = cap.mags.into_iter().collect();
    for (id, mags) in updates {
        let (wid, depthwise) = match &graph.nodes()[id].op {
            Op::Conv2d {
                weight, depthwise, ..
            } => (*weight, *depthwise),
            _ => continue,
        };
        let scales = coadapt_scales(&mags);
        let mut w = graph.param(wid).expect("conv weight").clone();
        if depthwise {
            // [C, 1, kh, kw]: channel j's filter scales by s_j.
            let inner = w.len() / w.dim(0);
            for (j, &s) in scales.iter().enumerate() {
                for v in &mut w.data_mut()[j * inner..(j + 1) * inner] {
                    *v *= s;
                }
            }
        } else {
            // [Cout, Cin, kh, kw]: input-channel slice j scales by s_j.
            let (cout, cin) = (w.dim(0), w.dim(1));
            let k = w.len() / (cout * cin);
            for o in 0..cout {
                for (j, &s) in scales.iter().enumerate() {
                    let base = (o * cin + j) * k;
                    for v in &mut w.data_mut()[base..base + k] {
                        *v *= s;
                    }
                }
            }
        }
        graph.set_param(wid, w).unwrap_ok();
    }
}

fn head_params(graph: &Graph, head: NodeId) -> (ptq_nn::ValueId, ptq_nn::ValueId) {
    match &graph.nodes()[head].op {
        Op::Linear { weight, bias } => (
            *weight,
            bias.expect("anchor heads require a Linear head with bias"),
        ),
        other => panic!("head node {head} is {other:?}, not Linear"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptq_nn::GraphBuilder;

    /// Backbone with a strong constant feature component, mimicking the
    /// GAP pathology.
    fn constant_heavy_graph(classes: usize) -> (Graph, Vec<Vec<Tensor>>) {
        let mut rng = TensorRng::seed(1);
        let mut b = GraphBuilder::new();
        let x = b.input();
        let w = b.param(rng.kaiming(&[6, 4]));
        let h = b.linear(x, w, None);
        let h = b.relu(h); // ReLU gives features a large positive mean
        let wh = b.param(rng.kaiming(&[classes, 6]));
        let bh = b.param(Tensor::zeros(&[classes]));
        let out = b.linear(h, wh, Some(bh));
        let g = b.finish(vec![out]);
        let batches: Vec<Vec<Tensor>> = (0..4)
            .map(|i| vec![TensorRng::seed(10 + i).normal(&[16, 4], 0.0, 1.0)])
            .collect();
        (g, batches)
    }

    #[test]
    fn anchor_head_diversifies_predictions() {
        let (mut g, batches) = constant_heavy_graph(4);
        let head = head_node(&g);
        // Before: predictions concentrate on very few classes.
        let feats = capture_features(&g, &batches, head);
        install_anchor_head(&mut g, head, &feats, 4, 7);
        let mut preds = Vec::new();
        for inp in &batches {
            preds.extend(g.infer(inp).unwrap_ok()[0].argmax_rows());
        }
        let mut counts = vec![0usize; 4];
        for &p in &preds {
            counts[p] += 1;
        }
        // Every class is used, and no class swallows almost everything.
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        assert!(
            *counts.iter().max().unwrap() < preds.len() * 3 / 4,
            "{counts:?}"
        );
    }

    #[test]
    fn anchor_sample_predicts_its_own_class_modulo_ties() {
        let (mut g, batches) = constant_heavy_graph(3);
        let head = head_node(&g);
        let feats = capture_features(&g, &batches, head);
        install_anchor_head(&mut g, head, &feats, 3, 3);
        // Predictions on the probe set are spread and deterministic.
        let p1: Vec<usize> = batches
            .iter()
            .flat_map(|inp| g.infer(inp).unwrap_ok()[0].argmax_rows())
            .collect();
        let p2: Vec<usize> = batches
            .iter()
            .flat_map(|inp| g.infer(inp).unwrap_ok()[0].argmax_rows())
            .collect();
        assert_eq!(p1, p2);
    }

    #[test]
    fn regression_head_unit_spread() {
        let (mut g, batches) = constant_heavy_graph(1);
        let head = head_node(&g);
        let feats = capture_features(&g, &batches, head);
        install_regression_head(&mut g, head, &feats, 5);
        let mut outs = Vec::new();
        for inp in &batches {
            outs.extend(g.infer(inp).unwrap_ok()[0].data().to_vec());
        }
        let m = outs.iter().sum::<f32>() / outs.len() as f32;
        let v = outs.iter().map(|x| (x - m).powi(2)).sum::<f32>() / outs.len() as f32;
        assert!((v - 1.0).abs() < 0.35, "variance {v}");
        assert!(m.abs() < 0.5, "mean {m}");
    }

    #[test]
    #[should_panic(expected = "require a Linear head with bias")]
    fn head_without_bias_rejected() {
        let mut rng = TensorRng::seed(2);
        let mut b = GraphBuilder::new();
        let x = b.input();
        let w = b.param(rng.kaiming(&[3, 4]));
        let y = b.linear(x, w, None);
        let mut g = b.finish(vec![y]);
        let f = Tensor::zeros(&[8, 4]);
        install_anchor_head(&mut g, 0, &f, 3, 1);
    }
}
