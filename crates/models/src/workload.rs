//! A workload = model graph + calibration data + eval data + metric.

use crate::task::{CalibSource, Metric};
use ptq_metrics::{Domain, WorkloadResult};
use ptq_nn::{ExecHook, Graph, NoopHook, PlanSet, PtqError, UnwrapOk};
use ptq_tensor::Tensor;

/// Static description of a workload, independent of any quantization
/// configuration.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Unique name, e.g. `resnet_like_20/imagenet_syn`.
    pub name: String,
    /// CV or NLP (audio/recsys analogues are tagged NLP for Table-2
    /// aggregation, as in the paper's CV/NLP/All split).
    pub domain: Domain,
    /// Architecture family slug (`resnet_like`, `bert_like`, …).
    pub family: String,
}

/// A fully-materialized workload.
///
/// Labels are defined by the FP32 model's own predictions on *clean*
/// inputs, and evaluation runs on *perturbed* inputs, so the FP32 baseline
/// is realistically below 100 % and quantization error degrades the score
/// through shifted decision margins (see crate docs and DESIGN.md).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Static description.
    pub spec: WorkloadSpec,
    /// The FP32 model.
    pub graph: Graph,
    /// Default calibration batches (each entry is a full `Graph::run`
    /// input set).
    pub calib: Vec<Vec<Tensor>>,
    /// Eval batches.
    pub eval: Vec<Vec<Tensor>>,
    /// Scoring rule (labels baked in).
    pub metric: Metric,
    /// FP32 baseline score, computed at construction.
    pub fp32_score: f64,
    /// Optional augmentable calibration pool (CV only; Figure 7).
    pub calib_source: Option<CalibSource>,
    /// Lazily-built execution plans, keyed by input shape. Serves both
    /// `self.graph` and structurally-identical clones of it (e.g. a
    /// quantized model's graph with recalibrated BatchNorm statistics).
    /// `Clone` yields a fresh empty set.
    pub plans: PlanSet,
}

impl Workload {
    /// Assemble a workload and compute its FP32 baseline.
    pub fn new(
        spec: WorkloadSpec,
        graph: Graph,
        calib: Vec<Vec<Tensor>>,
        eval: Vec<Vec<Tensor>>,
        metric: Metric,
        calib_source: Option<CalibSource>,
    ) -> Self {
        let mut w = Workload {
            spec,
            graph,
            calib,
            eval,
            metric,
            fp32_score: 0.0,
            calib_source,
            plans: PlanSet::new(),
        };
        w.fp32_score = w.evaluate(&mut NoopHook).unwrap_ok();
        w
    }

    /// Run every eval batch through the graph under `hook` and score the
    /// outputs.
    pub fn evaluate(&self, hook: &mut dyn ExecHook) -> Result<f64, PtqError> {
        self.evaluate_graph(&self.graph, hook)
    }

    /// Evaluate with a *different* graph (e.g. one whose BatchNorm running
    /// stats were recalibrated) under `hook`, surfacing malformed-graph and
    /// shape failures as typed errors instead of panicking.
    ///
    /// Executes through cached [`ExecPlan`](ptq_nn::ExecPlan)s (one per
    /// eval-batch shape), so repeated evaluation reuses arena buffers
    /// instead of re-validating and re-allocating every pass.
    pub fn evaluate_graph(&self, graph: &Graph, hook: &mut dyn ExecHook) -> Result<f64, PtqError> {
        let mut outputs: Vec<Tensor> = Vec::with_capacity(self.eval.len());
        for inputs in &self.eval {
            let mut out = self.plans.run(graph, inputs, hook)?;
            match (out.pop(), out.is_empty()) {
                (Some(t), true) => outputs.push(t),
                _ => {
                    return Err(PtqError::Internal(
                        "workloads are single-output".to_string(),
                    ))
                }
            }
        }
        Ok(self.metric.score(&outputs))
    }

    /// Deprecated alias of [`Workload::evaluate_graph`] (the
    /// `Result`-returning methods now carry the canonical, unprefixed
    /// names).
    #[deprecated(since = "0.2.0", note = "renamed to `evaluate_graph`")]
    pub fn try_evaluate_graph(
        &self,
        graph: &Graph,
        hook: &mut dyn ExecHook,
    ) -> Result<f64, PtqError> {
        self.evaluate_graph(graph, hook)
    }

    /// Feed every calibration batch through the graph under `hook`
    /// (outputs are discarded — the hook's observers are the point).
    pub fn calibrate(&self, hook: &mut dyn ExecHook) -> Result<(), PtqError> {
        self.calibrate_graph(&self.graph, hook)
    }

    /// Calibrate against a different graph instance, surfacing failures as
    /// typed errors. Planned execution, like [`Workload::evaluate_graph`].
    pub fn calibrate_graph(&self, graph: &Graph, hook: &mut dyn ExecHook) -> Result<(), PtqError> {
        for inputs in &self.calib {
            self.plans.run(graph, inputs, hook)?;
        }
        Ok(())
    }

    /// Deprecated alias of [`Workload::calibrate_graph`].
    #[deprecated(since = "0.2.0", note = "renamed to `calibrate_graph`")]
    pub fn try_calibrate_graph(
        &self,
        graph: &Graph,
        hook: &mut dyn ExecHook,
    ) -> Result<(), PtqError> {
        self.calibrate_graph(graph, hook)
    }

    /// Package a quantized score into the pass-rate record.
    pub fn result(&self, quantized_score: f64) -> WorkloadResult {
        WorkloadResult {
            workload: self.spec.name.clone(),
            domain: self.spec.domain,
            fp32: self.fp32_score,
            quantized: quantized_score,
            size_mb: self.graph.size_mb(),
        }
    }

    /// True if the model contains BatchNorm nodes (CV recalibration
    /// applies).
    pub fn has_batchnorm(&self) -> bool {
        !self
            .graph
            .nodes_of_class(ptq_nn::OpClass::BatchNorm)
            .is_empty()
    }
}
