//! The 75-workload zoo: the synthetic analogue of the paper's evaluation
//! suite (§4.1).
//!
//! Families, counts and the CV/NLP split mirror the paper's workload list.
//! Activation-outlier severity (the `outlier_gain` of NLP models and the
//! `hostility` of depthwise/ViT CV models) is varied across the zoo the way
//! real model populations vary: most encoders are mild (~10×), several are
//! moderate (~100×), and a few LLM-style decoders are extreme (~1000×).
//! Everything is seeded and deterministic.
//!
//! Sizes are deliberately small (the host for this reproduction is a
//! single CPU core); the *distributional* properties, not the parameter
//! counts, carry the paper's effects.

use crate::families::common::{CvConfig, Head, NlpConfig};
use crate::families::{cv, misc, nlp};
use crate::workload::Workload;

/// Which slice of the zoo to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZooFilter {
    /// Every workload (75).
    All,
    /// CV workloads only.
    Cv,
    /// NLP workloads only.
    Nlp,
    /// A small, fast, representative subset (for tests and examples).
    Quick,
}

/// Build the zoo.
pub fn build_zoo(filter: ZooFilter) -> Vec<Workload> {
    let mut all: Vec<Workload> = Vec::new();
    let want_cv = matches!(filter, ZooFilter::All | ZooFilter::Cv);
    let want_nlp = matches!(filter, ZooFilter::All | ZooFilter::Nlp);

    if filter == ZooFilter::Quick {
        return quick_zoo();
    }

    if want_cv {
        all.extend(cv_zoo());
    }
    if want_nlp {
        all.extend(nlp_zoo());
    }
    all
}

/// Names of every workload the full zoo contains (cheap — does not build
/// the models).
pub fn zoo_names() -> Vec<String> {
    // Building is cheap enough at these sizes that we just build and map;
    // kept as a function for API stability if laziness is ever needed.
    build_zoo(ZooFilter::All)
        .into_iter()
        .map(|w| w.spec.name)
        .collect()
}

fn cvc(width: usize, depth: usize, img: usize, seed: u64, hostility: f32) -> CvConfig {
    CvConfig {
        img,
        in_ch: 3,
        width,
        depth,
        classes: 8,
        seed,
        hostility,
    }
}

/// The 35 CV workloads.
#[allow(clippy::vec_init_then_push)]
fn cv_zoo() -> Vec<Workload> {
    let mut v = Vec::new();
    // Plain VGG-style stacks (benign; precision-bound).
    v.push(cv::vgg_like(&cvc(10, 2, 10, 101, 0.0)));
    v.push(cv::vgg_like(&cvc(12, 3, 12, 102, 0.0)));
    v.push(cv::vgg_like(&cvc(14, 2, 10, 103, 0.0)));
    v.push(cv::vgg_like(&cvc(16, 4, 12, 104, 0.0)));
    // ResNets (benign, one mildly hostile).
    v.push(cv::resnet_like(&cvc(10, 2, 10, 111, 0.0)));
    v.push(cv::resnet_like(&cvc(12, 2, 10, 112, 0.0)));
    v.push(cv::resnet_like(&cvc(12, 3, 12, 113, 0.0)));
    v.push(cv::resnet_like(&cvc(16, 2, 12, 114, 0.0)));
    v.push(cv::resnet_like(&cvc(14, 2, 10, 115, 8.0)));
    // MobileNet-style (depthwise; INT8-hostile range).
    v.push(cv::mobilenet_like(&cvc(12, 2, 10, 121, 12.0)));
    v.push(cv::mobilenet_like(&cvc(12, 3, 10, 122, 18.0)));
    v.push(cv::mobilenet_like(&cvc(16, 2, 12, 123, 25.0)));
    v.push(cv::mobilenet_like(&cvc(14, 2, 10, 124, 0.0)));
    // EfficientNet-style (SiLU + depthwise; INT8-hostile).
    v.push(cv::efficientnet_like(&cvc(12, 2, 10, 131, 15.0)));
    v.push(cv::efficientnet_like(&cvc(12, 3, 10, 132, 25.0)));
    v.push(cv::efficientnet_like(&cvc(16, 2, 12, 133, 35.0)));
    v.push(cv::efficientnet_like(&cvc(14, 1, 10, 134, 10.0)));
    // DenseNet-style (unfoldable BN).
    v.push(cv::densenet_like(&cvc(12, 2, 10, 141, 0.0)));
    v.push(cv::densenet_like(&cvc(12, 3, 12, 142, 0.0)));
    v.push(cv::densenet_like(&cvc(16, 2, 10, 143, 6.0)));
    // Inception-style.
    v.push(cv::inception_like(&cvc(12, 2, 10, 151, 0.0)));
    v.push(cv::inception_like(&cvc(14, 2, 12, 152, 0.0)));
    v.push(cv::inception_like(&cvc(16, 3, 12, 153, 0.0)));
    // ViT-style (LayerNorm outliers; INT8-hostile).
    v.push(cv::vit_like(&cvc(32, 1, 8, 161, 0.0), 12.0));
    v.push(cv::vit_like(&cvc(32, 2, 8, 162, 0.0), 25.0));
    v.push(cv::vit_like(&cvc(48, 2, 8, 163, 0.0), 50.0));
    v.push(cv::vit_like(&cvc(24, 2, 8, 164, 0.0), 8.0));
    // U-Net segmentation.
    v.push(cv::unet_like(&cvc(8, 1, 12, 171, 0.0)));
    v.push(cv::unet_like(&cvc(10, 2, 12, 172, 0.0)));
    v.push(cv::unet_like(&cvc(10, 1, 16, 173, 0.0)));
    // Detector heads.
    v.push(cv::detector_like(&cvc(10, 2, 12, 181, 0.0)));
    v.push(cv::detector_like(&cvc(12, 2, 12, 182, 0.0)));
    v.push(cv::detector_like(&cvc(10, 1, 16, 183, 8.0)));
    // Generators (Stable-Diffusion analogue; FID-scored).
    v.push(misc::generator_like(8, 12, 191));
    v.push(misc::generator_like(12, 16, 192));
    v
}

fn nlpc(
    d: usize,
    layers: usize,
    seq: usize,
    seed: u64,
    outlier_gain: f32,
    outlier_channels: usize,
) -> NlpConfig {
    NlpConfig {
        vocab: 48,
        seq,
        d,
        heads: 4,
        layers,
        ffn_mult: 2,
        seed,
        outlier_gain,
        outlier_channels,
        gamma_sigma: 0.3,
    }
}

/// A config with an explicit heavy-tail σ for the LayerNorm gains.
fn with_sigma(mut cfg: NlpConfig, gamma_sigma: f32) -> NlpConfig {
    cfg.gamma_sigma = gamma_sigma;
    cfg
}

/// The 40 NLP (plus audio/recsys) workloads.
///
/// Outlier gains and heavy-tail σ span the real population: most encoders
/// are mild (SmoothQuant + any 8-bit format copes), a band of
/// moderate-to-high-gain models breaks per-tensor INT8 even with
/// SmoothQuant, and a few heavy-tail (σ ≥ 1.5) members exceed E3M4's
/// dynamic-range window while staying inside E4M3's.
#[allow(clippy::vec_init_then_push)]
fn nlp_zoo() -> Vec<Workload> {
    let mut v = Vec::new();
    // BERT-style encoders on GLUE-style tasks.
    v.push(nlp::encoder_workload(
        "bert_like",
        "sst2_syn",
        &nlpc(64, 1, 12, 201, 10.0, 1),
        Head::Classes(6),
    ));
    v.push(nlp::encoder_workload(
        "bert_like",
        "sst2_syn",
        &with_sigma(nlpc(64, 2, 16, 202, 25.0, 1), 1.4),
        Head::Classes(6),
    ));
    v.push(nlp::encoder_workload(
        "bert_like",
        "sst2_syn",
        &with_sigma(nlpc(96, 2, 16, 203, 900.0, 2), 0.8),
        Head::Classes(6),
    ));
    v.push(nlp::encoder_workload(
        "bert_like",
        "mrpc_syn",
        &nlpc(64, 1, 12, 204, 12.0, 1),
        Head::Binary,
    ));
    v.push(nlp::encoder_workload(
        "bert_like",
        "mrpc_syn",
        &nlpc(64, 2, 16, 205, 500.0, 1),
        Head::Binary,
    ));
    v.push(nlp::encoder_workload(
        "bert_like",
        "mrpc_syn",
        &with_sigma(nlpc(96, 2, 16, 206, 1500.0, 2), 0.8),
        Head::Binary,
    ));
    v.push(nlp::encoder_workload(
        "bert_like",
        "cola_syn",
        &nlpc(64, 2, 12, 207, 15.0, 1),
        Head::Binary,
    ));
    v.push(nlp::encoder_workload(
        "bert_like",
        "cola_syn",
        &with_sigma(nlpc(96, 2, 16, 208, 800.0, 1), 0.6),
        Head::Binary,
    ));
    v.push(nlp::encoder_workload(
        "bert_like",
        "stsb_syn",
        &nlpc(64, 1, 12, 209, 10.0, 1),
        Head::Regression,
    ));
    v.push(nlp::encoder_workload(
        "bert_like",
        "stsb_syn",
        &nlpc(64, 2, 16, 210, 600.0, 1),
        Head::Regression,
    ));
    // DistilBERT-style (shallower).
    v.push(nlp::encoder_workload(
        "distilbert_like",
        "sst2_syn",
        &nlpc(64, 1, 16, 211, 15.0, 1),
        Head::Classes(6),
    ));
    v.push(nlp::encoder_workload(
        "distilbert_like",
        "mrpc_syn",
        &nlpc(64, 1, 16, 212, 450.0, 1),
        Head::Binary,
    ));
    // Longformer-style (longer sequences).
    v.push(nlp::encoder_workload(
        "longformer_like",
        "mrpc_syn",
        &nlpc(64, 1, 32, 213, 30.0, 1),
        Head::Binary,
    ));
    v.push(nlp::encoder_workload(
        "longformer_like",
        "sst2_syn",
        &with_sigma(nlpc(96, 2, 32, 214, 2000.0, 1), 0.8),
        Head::Classes(6),
    ));
    // Funnel-style — heavy-tail members (the Table-5 E3M4 collapse case).
    v.push(nlp::encoder_workload(
        "funnel_like",
        "mrpc_syn",
        &with_sigma(nlpc(96, 2, 16, 215, 300.0, 1), 1.6),
        Head::Binary,
    ));
    v.push(nlp::encoder_workload(
        "funnel_like",
        "sst2_syn",
        &nlpc(64, 1, 12, 216, 20.0, 1),
        Head::Classes(6),
    ));
    // XLM-R-style.
    v.push(nlp::encoder_workload(
        "xlmr_like",
        "mrpc_syn",
        &with_sigma(nlpc(64, 2, 16, 217, 700.0, 1), 1.5),
        Head::Binary,
    ));
    v.push(nlp::encoder_workload(
        "xlmr_like",
        "stsb_syn",
        &nlpc(64, 1, 12, 218, 18.0, 1),
        Head::Regression,
    ));
    // GPT-style decoders (LAMBADA-style task); gains up to LLM-extreme.
    v.push(nlp::decoder_workload(
        "gpt_like",
        &nlpc(64, 1, 12, 221, 15.0, 1),
    ));
    v.push(nlp::decoder_workload(
        "gpt_like",
        &nlpc(64, 2, 16, 222, 800.0, 1),
    ));
    v.push(nlp::decoder_workload(
        "gpt_like",
        &with_sigma(nlpc(64, 2, 16, 223, 1200.0, 2), 0.8),
    ));
    v.push(nlp::decoder_workload(
        "gpt_like",
        &nlpc(64, 1, 16, 224, 8.0, 1),
    ));
    v.push(nlp::decoder_workload(
        "gpt_like",
        &with_sigma(nlpc(96, 2, 16, 225, 2500.0, 1), 1.0),
    ));
    // Bloom-style (extreme outliers — the LLM regime).
    v.push(nlp::decoder_workload(
        "bloom_like",
        &with_sigma(nlpc(64, 2, 16, 231, 2000.0, 1), 0.8),
    ));
    v.push(nlp::decoder_workload(
        "bloom_like",
        &with_sigma(nlpc(96, 2, 16, 232, 4000.0, 1), 1.6),
    ));
    v.push(nlp::decoder_workload(
        "bloom_like",
        &with_sigma(nlpc(96, 2, 16, 233, 800.0, 2), 0.6),
    ));
    // LLaMA-style.
    v.push(nlp::decoder_workload(
        "llama_like",
        &with_sigma(nlpc(96, 2, 16, 241, 600.0, 1), 0.8),
    ));
    v.push(nlp::decoder_workload(
        "llama_like",
        &with_sigma(nlpc(96, 3, 16, 242, 3000.0, 1), 1.7),
    ));
    // DialoGPT / Pegasus-style.
    v.push(nlp::decoder_workload(
        "dialogpt_like",
        &with_sigma(nlpc(64, 2, 16, 251, 900.0, 1), 1.4),
    ));
    v.push(nlp::decoder_workload(
        "pegasus_like",
        &with_sigma(nlpc(64, 2, 16, 252, 80.0, 1), 1.5),
    ));
    // Marian-style translators.
    v.push(misc::translator_like(&nlpc(64, 1, 12, 261, 25.0, 1)));
    v.push(misc::translator_like(&nlpc(64, 1, 12, 262, 500.0, 1)));
    // DLRM-style recommenders.
    v.push(misc::dlrm_like(6, 16, 48, 271));
    v.push(misc::dlrm_like(8, 16, 64, 272));
    v.push(misc::dlrm_like(6, 24, 48, 273));
    // Speech: conv-only and conv+transformer frontends.
    v.push(misc::speech_like(64, 16, 2, 6, 281));
    v.push(misc::speech_like(96, 20, 3, 6, 282));
    v.push(misc::wav2vec_like(64, &nlpc(48, 1, 12, 283, 20.0, 1), 283));
    v.push(misc::wav2vec_like(96, &nlpc(48, 1, 12, 284, 40.0, 1), 284));
    v.push(misc::wav2vec_like(64, &nlpc(48, 2, 12, 285, 15.0, 1), 285));
    v
}

/// A fast 8-workload subset covering both domains, BatchNorm and
/// LayerNorm models, and the outlier-severity range.
fn quick_zoo() -> Vec<Workload> {
    quick_thunks().into_iter().map(|t| t()).collect()
}

/// The quick zoo as unevaluated constructors, so a limited build (see
/// [`build_zoo_limited`]) pays only for the workloads it returns —
/// building (weights + FP32 baseline eval) dominates short runs.
fn quick_thunks() -> Vec<Box<dyn Fn() -> Workload>> {
    vec![
        Box::new(|| cv::vgg_like(&cvc(10, 2, 10, 101, 0.0))),
        Box::new(|| cv::resnet_like(&cvc(12, 2, 10, 112, 0.0))),
        Box::new(|| cv::mobilenet_like(&cvc(12, 2, 10, 121, 12.0))),
        Box::new(|| cv::vit_like(&cvc(32, 1, 8, 161, 0.0), 12.0)),
        Box::new(|| {
            nlp::encoder_workload(
                "bert_like",
                "mrpc_syn",
                &nlpc(64, 1, 12, 204, 12.0, 1),
                Head::Binary,
            )
        }),
        Box::new(|| {
            nlp::encoder_workload(
                "funnel_like",
                "mrpc_syn",
                &with_sigma(nlpc(96, 2, 16, 215, 300.0, 1), 1.6),
                Head::Binary,
            )
        }),
        Box::new(|| nlp::decoder_workload("gpt_like", &nlpc(64, 1, 12, 221, 15.0, 1))),
        Box::new(|| misc::dlrm_like(6, 16, 48, 271)),
    ]
}

/// Build at most `limit` workloads of the filtered zoo, identical to a
/// prefix of [`build_zoo`]'s output. For [`ZooFilter::Quick`] only the
/// returned workloads are constructed at all, which is what makes the
/// bench binaries' `--limit N` flag cheap.
pub fn build_zoo_limited(filter: ZooFilter, limit: usize) -> Vec<Workload> {
    if filter == ZooFilter::Quick {
        return quick_thunks()
            .into_iter()
            .take(limit)
            .map(|t| t())
            .collect();
    }
    let mut zoo = build_zoo(filter);
    zoo.truncate(limit);
    zoo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_zoo_builds() {
        let zoo = build_zoo(ZooFilter::Quick);
        assert_eq!(zoo.len(), 8);
        for w in &zoo {
            assert!(w.fp32_score > 0.2, "{} fp32 {}", w.spec.name, w.fp32_score);
        }
        // Both domains present.
        assert!(zoo.iter().any(|w| w.spec.domain == ptq_metrics::Domain::Cv));
        assert!(zoo
            .iter()
            .any(|w| w.spec.domain == ptq_metrics::Domain::Nlp));
    }

    #[test]
    #[ignore = "builds all 75 workloads (~seconds); run explicitly"]
    fn full_zoo_has_75_unique_workloads() {
        let zoo = build_zoo(ZooFilter::All);
        assert_eq!(zoo.len(), 75);
        let mut names: Vec<&str> = zoo.iter().map(|w| w.spec.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 75, "workload names must be unique");
        let cv_n = zoo
            .iter()
            .filter(|w| w.spec.domain == ptq_metrics::Domain::Cv)
            .count();
        assert_eq!(cv_n, 35);
        for w in &zoo {
            assert!(
                w.fp32_score > 0.15 && w.fp32_score <= 1.0 + 1e-9,
                "{} fp32 {}",
                w.spec.name,
                w.fp32_score
            );
        }
    }
}
