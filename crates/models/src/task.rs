//! Task definitions: metrics over graph outputs, calibration-data sources
//! and the augmentation transforms used by the BatchNorm-calibration study.

use ptq_metrics::{
    accuracy, f1_binary, feature_moments, frechet_distance, matthews_corr, pearson, FeatureMoments,
};
use ptq_tensor::{Tensor, TensorRng};

/// How to score a workload's eval outputs (one output tensor per eval
/// batch, concatenated semantics depending on the variant). Labels/targets
/// are baked into the metric at workload construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Row-wise argmax vs labels; outputs are `[n, classes]` (possibly
    /// split across batches).
    Top1 {
        /// Ground-truth class per row.
        labels: Vec<usize>,
    },
    /// Binary F1 on thresholded scores; outputs `[n, 2]`, positive iff
    /// `logit[1] > logit[0]` (the MRPC-style metric).
    BinaryF1 {
        /// Ground-truth positives.
        labels: Vec<bool>,
    },
    /// Matthews correlation on thresholded scores (the CoLA metric).
    Matthews {
        /// Ground-truth positives.
        labels: Vec<bool>,
    },
    /// Pearson correlation of a scalar head output vs targets
    /// (the STS-B metric); outputs `[n, 1]`.
    Pearson {
        /// Regression targets.
        targets: Vec<f32>,
    },
    /// Per-sequence last-token prediction: each eval batch output is
    /// `[seq, vocab]`; the last row's argmax is compared to the label
    /// (the LAMBADA-style metric).
    LastTokenTop1 {
        /// Target token per sequence.
        labels: Vec<usize>,
    },
    /// Dense per-pixel classification; each output is `[n, classes, h, w]`
    /// and labels are flattened per-pixel classes (the U-Net metric).
    PixelTop1 {
        /// Per-pixel labels, length `n*h*w` accumulated over batches.
        labels: Vec<usize>,
    },
    /// Generation quality: outputs are feature tensors `[n, d]`; the score
    /// is `1 / (1 + FID)` against the FP32 reference moments so that
    /// *higher is better*, matching pass-rate semantics.
    FidScore {
        /// Feature moments of the FP32 generator's outputs.
        reference: FeatureMoments,
    },
}

impl Metric {
    /// Score a full eval run (one output tensor per eval batch).
    ///
    /// # Panics
    ///
    /// Panics if output shapes are inconsistent with the metric's labels.
    pub fn score(&self, outputs: &[Tensor]) -> f64 {
        match self {
            Metric::Top1 { labels } => {
                let preds = collect_row_argmax(outputs);
                assert_eq!(preds.len(), labels.len(), "Top1 label count");
                accuracy(&preds, labels)
            }
            Metric::BinaryF1 { labels } => {
                let preds = collect_binary(outputs);
                assert_eq!(preds.len(), labels.len(), "F1 label count");
                f1_binary(&preds, labels)
            }
            Metric::Matthews { labels } => {
                let preds = collect_binary(outputs);
                assert_eq!(preds.len(), labels.len(), "Matthews label count");
                matthews_corr(&preds, labels)
            }
            Metric::Pearson { targets } => {
                let scores: Vec<f32> = outputs
                    .iter()
                    .flat_map(|t| t.data().iter().copied())
                    .collect();
                assert_eq!(scores.len(), targets.len(), "Pearson target count");
                pearson(&scores, targets)
            }
            Metric::LastTokenTop1 { labels } => {
                assert_eq!(outputs.len(), labels.len(), "LastToken output count");
                let preds: Vec<usize> = outputs
                    .iter()
                    .map(|o| {
                        assert_eq!(o.ndim(), 2, "LastToken output must be [seq, vocab]");
                        let last = o.dim(0) - 1;
                        Tensor::from_slice(o.row(last)).argmax()
                    })
                    .collect();
                accuracy(&preds, labels)
            }
            Metric::PixelTop1 { labels } => {
                let mut preds = Vec::with_capacity(labels.len());
                for o in outputs {
                    assert_eq!(o.ndim(), 4, "PixelTop1 output must be [n,c,h,w]");
                    let (n, c, h, w) = (o.dim(0), o.dim(1), o.dim(2), o.dim(3));
                    for ni in 0..n {
                        for y in 0..h {
                            for x in 0..w {
                                let mut best = 0;
                                let mut best_v = f32::NEG_INFINITY;
                                for ci in 0..c {
                                    let v = o.at(&[ni, ci, y, x]);
                                    if v > best_v {
                                        best_v = v;
                                        best = ci;
                                    }
                                }
                                preds.push(best);
                            }
                        }
                    }
                }
                assert_eq!(preds.len(), labels.len(), "PixelTop1 label count");
                accuracy(&preds, labels)
            }
            Metric::FidScore { reference } => {
                let all = Tensor::concat0(&outputs.iter().collect::<Vec<_>>());
                let m = feature_moments(&all);
                1.0 / (1.0 + frechet_distance(reference, &m))
            }
        }
    }
}

fn collect_row_argmax(outputs: &[Tensor]) -> Vec<usize> {
    let mut preds = Vec::new();
    for o in outputs {
        assert_eq!(o.ndim(), 2, "classification output must be 2-D");
        preds.extend(o.argmax_rows());
    }
    preds
}

fn collect_binary(outputs: &[Tensor]) -> Vec<bool> {
    let mut preds = Vec::new();
    for o in outputs {
        assert_eq!(o.ndim(), 2, "binary output must be 2-D");
        assert_eq!(o.dim(1), 2, "binary output must have 2 logits");
        for i in 0..o.dim(0) {
            let r = o.row(i);
            preds.push(r[1] > r[0]);
        }
    }
    preds
}

/// Calibration-data transform, the Figure-7 variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transform {
    /// Training-style augmentation: random spatial shift, horizontal flip
    /// and additive noise — the paper's recommended choice.
    Train,
    /// Inference-style: the clean images as-is.
    Inference,
}

/// A pool of clean calibration images from which augmented calibration
/// batches of any size can be drawn (CV workloads only; used by the
/// BatchNorm-calibration experiment).
#[derive(Debug, Clone)]
pub struct CalibSource {
    /// Clean pool `[pool, c, h, w]`.
    pub pool: Tensor,
    /// Std of the additive train-transform noise, relative to data std.
    pub noise: f32,
    /// Batch size used when materializing calibration batches.
    pub batch: usize,
}

impl CalibSource {
    /// Draw `n` calibration samples (with replacement) under the given
    /// transform, packed into batches.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty or not 4-D.
    pub fn sample(&self, n: usize, transform: Transform, seed: u64) -> Vec<Vec<Tensor>> {
        assert_eq!(self.pool.ndim(), 4, "calibration pool must be NCHW");
        let pool_n = self.pool.dim(0);
        assert!(pool_n > 0, "empty calibration pool");
        let (c, h, w) = (self.pool.dim(1), self.pool.dim(2), self.pool.dim(3));
        let mut rng = TensorRng::seed(seed);
        let mut batches = Vec::new();
        let mut remaining = n;
        while remaining > 0 {
            let b = remaining.min(self.batch);
            let mut batch = Tensor::zeros(&[b, c, h, w]);
            for i in 0..b {
                let img = self.pool.index_axis0(rng.below(pool_n));
                let img = match transform {
                    Transform::Inference => img,
                    Transform::Train => augment(&img, &mut rng, self.noise),
                };
                let dst = &mut batch.data_mut()[i * c * h * w..(i + 1) * c * h * w];
                dst.copy_from_slice(img.data());
            }
            batches.push(vec![batch]);
            remaining -= b;
        }
        batches
    }
}

/// Training-style augmentation of one `[c, h, w]` image: random shift by up
/// to 2 pixels, horizontal flip with probability ½, and additive Gaussian
/// noise.
pub fn augment(img: &Tensor, rng: &mut TensorRng, noise: f32) -> Tensor {
    assert_eq!(img.ndim(), 3, "augment expects [c,h,w]");
    let (c, h, w) = (img.dim(0), img.dim(1), img.dim(2));
    let dy = rng.below(5) as isize - 2;
    let dx = rng.below(5) as isize - 2;
    let flip = rng.unit() < 0.5;
    let mut out = Tensor::zeros(&[c, h, w]);
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                let sy = y as isize + dy;
                let sx = x as isize + dx;
                if sy < 0 || sy >= h as isize || sx < 0 || sx >= w as isize {
                    continue;
                }
                let sx = if flip {
                    w - 1 - sx as usize
                } else {
                    sx as usize
                };
                *out.at_mut(&[ci, y, x]) = img.at(&[ci, sy as usize, sx]);
            }
        }
    }
    if noise > 0.0 {
        let n = rng.normal(&[c, h, w], 0.0, noise);
        out = out.add(&n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top1_metric() {
        let m = Metric::Top1 {
            labels: vec![1, 0, 2],
        };
        let o = Tensor::from_vec(vec![0.0, 1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        assert_eq!(m.score(&[o]), 1.0);
    }

    #[test]
    fn top1_across_batches() {
        let m = Metric::Top1 { labels: vec![0, 1] };
        let a = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]);
        let b = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]);
        assert_eq!(m.score(&[a, b]), 0.5);
    }

    #[test]
    fn binary_f1_metric() {
        let m = Metric::BinaryF1 {
            labels: vec![true, false],
        };
        let o = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]);
        assert_eq!(m.score(&[o]), 1.0);
    }

    #[test]
    fn pearson_metric() {
        let m = Metric::Pearson {
            targets: vec![1.0, 2.0, 3.0],
        };
        let o = Tensor::from_vec(vec![2.0, 4.0, 6.0], &[3, 1]);
        assert!((m.score(&[o]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn last_token_metric() {
        let m = Metric::LastTokenTop1 { labels: vec![2] };
        let o = Tensor::from_vec(vec![9.0, 0.0, 0.0, 0.0, 0.0, 9.0], &[2, 3]);
        assert_eq!(m.score(&[o]), 1.0);
    }

    #[test]
    fn pixel_metric() {
        let m = Metric::PixelTop1 {
            labels: vec![0, 1, 1, 0],
        };
        // [1, 2, 2, 2]: channel 0 wins at (0,0) and (1,1).
        let o = Tensor::from_vec(vec![9., 0., 0., 9., 0., 9., 9., 0.], &[1, 2, 2, 2]);
        assert_eq!(m.score(&[o]), 1.0);
    }

    #[test]
    fn fid_score_is_one_for_reference() {
        let f = TensorRng::seed(1).normal(&[200, 4], 0.0, 1.0);
        let m = Metric::FidScore {
            reference: ptq_metrics::feature_moments(&f),
        };
        assert!((m.score(&[f]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn augment_preserves_shape_and_adds_noise() {
        let img = TensorRng::seed(2).normal(&[3, 8, 8], 0.0, 1.0);
        let mut rng = TensorRng::seed(3);
        let a = augment(&img, &mut rng, 0.1);
        assert_eq!(a.shape(), img.shape());
        assert_ne!(a, img);
    }

    #[test]
    fn calib_source_sizes_and_transforms() {
        let pool = TensorRng::seed(4).normal(&[10, 3, 8, 8], 0.0, 1.0);
        let src = CalibSource {
            pool,
            noise: 0.1,
            batch: 16,
        };
        let batches = src.sample(40, Transform::Train, 7);
        let total: usize = batches.iter().map(|b| b[0].dim(0)).sum();
        assert_eq!(total, 40);
        // Deterministic given the seed.
        let again = src.sample(40, Transform::Train, 7);
        assert_eq!(batches[0][0], again[0][0]);
        // Inference transform draws images verbatim from the pool.
        let inf = src.sample(4, Transform::Inference, 1);
        assert_eq!(inf[0][0].dim(0), 4);
    }
}
