//! # ptq-models — the synthetic workload zoo
//!
//! The paper evaluates 75 unique architectures over 200+ tasks drawn from
//! Hugging Face / TorchVision with their pretrained weights and public
//! datasets. None of those assets are available here, so this crate builds
//! the closest synthetic equivalent (see DESIGN.md §1):
//!
//! * **Architectures** — families mirroring the paper's workload list
//!   (plain CNN/VGG, ResNet, MobileNet, EfficientNet, DenseNet, Inception,
//!   ViT, U-Net, detector heads and a conv generator on the CV side; BERT
//!   style encoders with GLUE-style heads, GPT-style decoders, DLRM-style
//!   embedding MLPs and a conv-frontend speech encoder on the NLP side),
//!   built on the `ptq-nn` graph IR with the same quantizable op mix.
//! * **Weights** — seeded draws from the paper's Figure-3 distributions:
//!   zero-mean normals (precision-bound). NLP models additionally carry
//!   amplified LayerNorm gain channels, reproducing the outlier structure
//!   that makes INT8 activation quantization fail on language models.
//! * **Tasks** — synthetic inputs with labels defined by the FP32 model's
//!   own predictions on clean inputs, evaluated on perturbed inputs. The
//!   FP32 baseline is therefore realistically below 100 %, and quantization
//!   degrades accuracy through exactly the mechanism the paper studies:
//!   numeric perturbation of the function near decision margins.
//!
//! [`zoo::build_zoo`] returns the full 75-workload suite; individual
//! builders are exposed for targeted experiments.

pub mod anchor;
pub mod families;
pub mod task;
pub mod workload;
pub mod zoo;

pub use task::{CalibSource, Metric, Transform};
pub use workload::{Workload, WorkloadSpec};
pub use zoo::{build_zoo, build_zoo_limited, zoo_names, ZooFilter};
