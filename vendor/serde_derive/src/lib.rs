//! Offline stand-in for `serde_derive`.
//!
//! This workspace builds in environments with no crates.io access, so the
//! real serde stack is replaced by a small vendored implementation (see
//! `vendor/serde`). This proc-macro crate derives that implementation's
//! [`Serialize`]/[`Deserialize`] traits for the plain data shapes the
//! workspace actually uses:
//!
//! * structs with named fields (serialized as JSON objects),
//! * tuple structs (serialized as JSON arrays),
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's default representation).
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported;
//! the derive fails loudly if it meets a shape it cannot handle, rather
//! than silently producing wrong serialization.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        ItemKind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            if *n == 1 {
                elems.into_iter().next().expect("one element")
            } else {
                format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
            }
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let name = &item.name;
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantFields::Struct(fields) => {
                        let binds = fields.join(", ");
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Object(::std::vec![{}]))]),\n",
                            pairs.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {} {{\n    fn serialize(&self) -> ::serde::Value {{\n        {}\n    }}\n}}\n",
        item.name, body
    );
    out.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}\n", item.name)
        .parse()
        .expect("generated Deserialize impl parses")
}

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Parse the derive input far enough to know the item's name and field
/// layout. Panics (a compile error at the derive site) on generics or other
/// unsupported shapes.
fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind_kw = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected struct/enum, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic types are not supported; hand-write the impl for {name}");
        }
    }
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() != Delimiter::Bracket => break Some(g),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break None,
            Some(_) => continue,
            None => break None,
        }
    };
    let kind = match (kind_kw.as_str(), body) {
        ("struct", Some(g)) if g.delimiter() == Delimiter::Brace => {
            ItemKind::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(g)) if g.delimiter() == Delimiter::Parenthesis => {
            ItemKind::TupleStruct(count_tuple_fields(g.stream()))
        }
        ("struct", None) => ItemKind::TupleStruct(0),
        ("enum", Some(g)) if g.delimiter() == Delimiter::Brace => {
            ItemKind::Enum(parse_variants(g.stream()))
        }
        (kw, _) => panic!("serde derive: unsupported item kind {kw}"),
    };
    Item { name, kind }
}

/// Extract field names from a named-field body, skipping attributes,
/// visibility and types (tracking `<...>` depth so generic types with
/// commas don't split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    'outer: loop {
        // Skip attributes and visibility before the field name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(_) => break,
                None => break 'outer,
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde derive: expected field name, got {other}"),
            None => break,
        };
        fields.push(name);
        // Skip `: Type` until a top-level comma.
        let mut angle = 0i32;
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Count fields of a tuple body (top-level commas, `<...>`-aware).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for tok in stream {
        any = true;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => commas += 1,
                _ => {}
            }
        }
    }
    if any {
        commas + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    'outer: loop {
        // Skip attributes before the variant name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(_) => break,
                None => break 'outer,
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde derive: expected variant name, got {other}"),
            None => break,
        };
        let mut fields = VariantFields::Unit;
        if let Some(TokenTree::Group(g)) = iter.peek() {
            fields = match g.delimiter() {
                Delimiter::Parenthesis => VariantFields::Tuple(count_tuple_fields(g.stream())),
                Delimiter::Brace => VariantFields::Struct(parse_named_fields(g.stream())),
                _ => VariantFields::Unit,
            };
            iter.next();
        }
        variants.push(Variant { name, fields });
        // Skip an optional `= discriminant` and the trailing comma.
        let mut angle = 0i32;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    iter.next();
                    match c {
                        '<' => angle += 1,
                        '>' => angle -= 1,
                        ',' if angle == 0 => break,
                        _ => {}
                    }
                }
                Some(_) => {
                    iter.next();
                }
                None => break,
            }
        }
    }
    variants
}
