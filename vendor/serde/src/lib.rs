//! Offline stand-in for `serde`.
//!
//! The build environment for this workspace has no crates.io access, so the
//! real serde is replaced by this minimal vendored implementation. Instead
//! of serde's visitor-based zero-copy data model, [`Serialize`] converts a
//! value into a JSON-shaped [`Value`] tree which `serde_json` (also
//! vendored) renders. That covers everything the workspace needs —
//! `#[derive(Serialize, Deserialize)]` on plain structs/enums and
//! `serde_json::to_string_pretty` on experiment results — with identical
//! call-site syntax to the real crate.
//!
//! [`Deserialize`] is a marker trait only: nothing in the workspace parses
//! serialized data back (experiment JSON is consumed by external tooling).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the intermediate representation between
/// [`Serialize`] and the `serde_json` renderer.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also produced by non-finite floats, as in real
    /// serde_json).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so u64 > i64::MAX round-trips).
    UInt(u64),
    /// Finite floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys (derive emits declaration order).
    Object(Vec<(String, Value)>),
}

/// Serialize into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` into a JSON-shaped value tree.
    fn serialize(&self) -> Value;
}

/// Marker for types that real serde would deserialize. The vendored stack
/// never reads serialized data back, so this carries no behavior.
pub trait Deserialize {}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        if self.is_finite() {
            // Render through the f32 shortest representation so JSON shows
            // "0.1", not the f64 expansion 0.10000000149011612.
            Value::Float(format!("{self}").parse().unwrap_or(f64::NAN))
        } else {
            Value::Null
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            Value::Null
        }
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

/// Render a serialized key as a JSON object key (JSON keys are strings).
fn key_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Float(f) => f.to_string(),
        other => panic!("unsupported map key for JSON serialization: {other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.serialize()), v.serialize()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k.serialize()), v.serialize()))
            .collect();
        // Deterministic output regardless of hasher state.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
    )+};
}
impl_ser_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(true.serialize(), Value::Bool(true));
        assert_eq!(3u8.serialize(), Value::UInt(3));
        assert_eq!((-7i32).serialize(), Value::Int(-7));
        assert_eq!(0.5f32.serialize(), Value::Float(0.5));
        assert_eq!(f64::NAN.serialize(), Value::Null);
        assert_eq!("x".serialize(), Value::Str("x".into()));
    }

    #[test]
    fn f32_shortest_representation() {
        // 0.1f32 must not serialize as the f64 expansion.
        assert_eq!(0.1f32.serialize(), Value::Float(0.1));
    }

    #[test]
    fn containers() {
        assert_eq!(
            vec![1u32, 2].serialize(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(Option::<u32>::None.serialize(), Value::Null);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        assert_eq!(
            m.serialize(),
            Value::Object(vec![("a".into(), Value::UInt(1))])
        );
    }
}
