//! Offline stand-in for `criterion`.
//!
//! A wall-clock micro-benchmark harness behind the criterion API subset
//! this workspace uses: `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `iter`/`iter_batched`,
//! `Throughput::Elements` and `black_box`. No statistics beyond the mean —
//! each benchmark is warmed up briefly, then timed over enough iterations
//! to fill a fixed measurement window, and the mean time per iteration
//! (plus element throughput when declared) is printed.
//!
//! Honors `CRITERION_MEASURE_MS` to shrink/grow the measurement window
//! (useful to keep CI smoke runs fast), and `CRITERION_JSON=<path>` to
//! append one NDJSON record per benchmark (`id`, `secs_per_iter`,
//! `iters`) for machine consumers such as the CI regression gate.

use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized; accepted for API compatibility, the
/// harness always materializes one input per iteration.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Declared work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

fn measure_window() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(1))
}

/// Benchmark registry/runner.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n[bench group] {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), None, f);
        self
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the harness sizes runs by wall
    /// clock, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.throughput, f);
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_benchmark<F>(id: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warmup: one short pass to fault in caches and train the branch
    // predictors, discarded.
    let mut warm = Bencher {
        window: Duration::from_millis(30),
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut warm);
    let mut b = Bencher {
        window: measure_window(),
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed.as_secs_f64() / b.iters as f64
    } else {
        f64::NAN
    };
    write_json_record(id, per_iter, b.iters);
    let time = format_time(per_iter);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / per_iter;
            eprintln!(
                "{id:<48} {time:>14}/iter  {:>12}",
                format_rate(rate, "elem")
            );
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / per_iter;
            eprintln!("{id:<48} {time:>14}/iter  {:>12}", format_rate(rate, "B"));
        }
        None => eprintln!("{id:<48} {time:>14}/iter"),
    }
}

/// Append one NDJSON record to the `CRITERION_JSON` file, if set. Errors
/// are reported to stderr but never fail the benchmark run.
fn write_json_record(id: &str, secs_per_iter: f64, iters: u64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() || !secs_per_iter.is_finite() {
        return;
    }
    // Benchmark ids are code-controlled ASCII, but escape the JSON
    // specials anyway so a stray quote cannot corrupt the stream.
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect();
    let line =
        format!("{{\"id\":\"{escaped}\",\"secs_per_iter\":{secs_per_iter:e},\"iters\":{iters}}}\n");
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("CRITERION_JSON: cannot write {path}: {e}");
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn format_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}/s", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k{unit}/s", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}/s")
    }
}

/// Passed to every benchmark closure; measures the hot loop.
pub struct Bencher {
    window: Duration,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` repeatedly until the measurement window is filled.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let mut batch: u64 = 1;
        while self.elapsed < self.window {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.elapsed += start.elapsed();
            self.iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        while self.elapsed < self.window {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(100));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn json_records_are_appended() {
        let path = std::env::temp_dir().join(format!("criterion_json_{}", std::process::id()));
        let path_str = path.to_string_lossy().into_owned();
        std::env::set_var("CRITERION_JSON", &path_str);
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("json/\"quoted\"", |b| b.iter(|| 1 + 1));
        std::env::remove_var("CRITERION_JSON");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // Filter by id: a concurrently-running test may also append.
        let line = text
            .lines()
            .find(|l| l.contains("json/"))
            .unwrap_or_default();
        assert!(
            line.starts_with("{\"id\":\"json/\\\"quoted\\\"\""),
            "{line}"
        );
        assert!(line.contains("\"secs_per_iter\":"), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }

    #[test]
    fn formatting() {
        assert!(format_time(2e-9).ends_with("ns"));
        assert!(format_time(2e-4).ends_with("µs"));
        assert!(format_rate(5e7, "elem").contains("Melem/s"));
    }
}
