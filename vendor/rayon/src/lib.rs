//! Offline stand-in for `rayon`.
//!
//! Implements the small rayon API subset this workspace uses — indexed
//! `par_chunks_mut` and `par_iter().map().collect()` / `.for_each()` over
//! slices — with real parallelism from `std::thread::scope`. Work is split
//! into one contiguous batch per worker thread, which matches how the
//! kernels here use it (uniform-cost chunks); there is no work stealing.
//!
//! Results preserve input order exactly, so swapping this stub for real
//! rayon (or back) cannot change any output.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelSliceMut};
}

/// Worker thread count: `RAYON_NUM_THREADS` if set, else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    static CACHE: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHE.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    CACHE.store(n, Ordering::Relaxed);
    n
}

/// `slice.par_chunks_mut(n)`: disjoint mutable chunks processed in
/// parallel.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel equivalent of `chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel mutable chunk iterator (see [`ParallelSliceMut`]).
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index.
    pub fn enumerate(self) -> EnumeratedParChunksMut<'a, T> {
        EnumeratedParChunksMut(self)
    }

    /// Apply `f` to every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Indexed form of [`ParChunksMut`].
pub struct EnumeratedParChunksMut<'a, T>(ParChunksMut<'a, T>);

impl<T: Send> EnumeratedParChunksMut<'_, T> {
    /// Apply `f` to every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunks: Vec<(usize, &mut [T])> = self
            .0
            .slice
            .chunks_mut(self.0.chunk_size)
            .enumerate()
            .collect();
        run_batches(chunks, &f);
    }
}

/// `collection.par_iter()`: shared parallel iteration over a slice.
pub trait IntoParallelRefIterator<'data> {
    /// Element type yielded by reference.
    type Item: 'data;
    /// Borrowing parallel iterator.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map every element in parallel. Lazy: runs on `collect`/`for_each`.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Apply `f` to every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let refs: Vec<&'a T> = self.items.iter().collect();
        run_batches(refs, &|r| f(r));
    }
}

/// Result of [`ParIter::map`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Evaluate the map in parallel, preserving input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let n = self.items.len();
        let nt = current_num_threads().min(n).max(1);
        if nt <= 1 {
            return self.items.iter().map(&self.f).collect::<Vec<R>>().into();
        }
        let f = &self.f;
        let mut out: Vec<R> = Vec::with_capacity(n);
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(nt);
            for b in 0..nt {
                let (lo, hi) = batch_bounds(n, nt, b);
                let items = &self.items[lo..hi];
                handles.push(s.spawn(move || items.iter().map(f).collect::<Vec<R>>()));
            }
            for h in handles {
                out.extend(h.join().expect("parallel map worker panicked"));
            }
        });
        out.into()
    }
}

/// Bounds of batch `b` when splitting `n` items across `nt` contiguous
/// batches as evenly as possible.
fn batch_bounds(n: usize, nt: usize, b: usize) -> (usize, usize) {
    let base = n / nt;
    let rem = n % nt;
    let lo = b * base + b.min(rem);
    let hi = lo + base + usize::from(b < rem);
    (lo, hi)
}

/// Run `f` over every work item, splitting the items into one contiguous
/// batch per worker thread.
fn run_batches<W: Send, F>(mut work: Vec<W>, f: &F)
where
    F: Fn(W) + Sync,
{
    let n = work.len();
    let nt = current_num_threads().min(n).max(1);
    if nt <= 1 {
        for w in work {
            f(w);
        }
        return;
    }
    std::thread::scope(|s| {
        for b in (0..nt).rev() {
            let (lo, _) = batch_bounds(n, nt, b);
            let batch: Vec<W> = work.split_off(lo);
            s.spawn(move || {
                for w in batch {
                    f(w);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_mut_indexed() {
        let mut v = vec![0u32; 1000];
        v.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as u32;
            }
        });
        for (j, &x) in v.iter().enumerate() {
            assert_eq!(x, (j / 7) as u32);
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..503).collect();
        let doubled: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_for_each_visits_all() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let items: Vec<u64> = (1..=100).collect();
        let sum = AtomicU64::new(0);
        items[..].par_iter().for_each(|&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn batch_bounds_partition() {
        for n in [0usize, 1, 5, 16, 17] {
            for nt in [1usize, 2, 3, 8] {
                let mut covered = 0;
                for b in 0..nt {
                    let (lo, hi) = batch_bounds(n, nt, b);
                    assert_eq!(lo, covered);
                    covered = hi;
                }
                assert_eq!(covered, n);
            }
        }
    }
}
