//! Offline stand-in for `serde_json`: renders the vendored [`serde::Value`]
//! tree as JSON text. Output is strict JSON (RFC 8259): strings are
//! escaped, non-finite floats serialize as `null`, and object keys keep
//! declaration order.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The vendored data model is infallible, so this is
/// never actually produced; it exists so call sites keep the familiar
/// `Result` shape of real serde_json.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json (vendored): serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON (two-space indent, like real
/// serde_json's default pretty formatter).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some("  "), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // `Display` for f64 prints integral values without a dot;
                // keep them numeric-typed but unambiguous as floats.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Float(0.5), Value::Null]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[0.5,null]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"a\": 1"));
        assert!(pretty.starts_with("{\n"));
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            to_string(&"a\"b\\c\nd").unwrap(),
            r#""a\"b\\c\nd""#.to_string()
        );
    }

    #[test]
    fn integral_floats_keep_decimal_point() {
        assert_eq!(to_string(&Value::Float(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn non_finite_is_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
