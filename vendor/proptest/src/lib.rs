//! Offline stand-in for `proptest`.
//!
//! Provides the API subset this workspace's property tests use —
//! `proptest! { fn name(x in strategy, ...) { ... } }`, range strategies,
//! `Just`, `prop_oneof!`, `collection::vec`, `num::f32::NORMAL`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and
//! `ProptestConfig::with_cases` — implemented as a deterministic
//! pseudo-random case runner.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking: a failing case panics with its case index, and the whole
//!   run is reproducible (the RNG is seeded only by the case index);
//! * no persistence: `*.proptest-regressions` files are ignored;
//! * `prop_assume!` skips the case instead of drawing a replacement.

/// Default number of cases per property (matches real proptest).
pub const DEFAULT_CASES: u32 = 256;

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of pseudo-random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic split-mix test RNG. Every case gets an independent stream
/// derived from its index, so failures reproduce without stored seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for one case of one property run. The case index is mixed
    /// through the splitmix64 finalizer so consecutive cases start at
    /// unrelated stream positions (a plain `GAMMA * case` start would make
    /// case `n`'s second draw equal case `n+1`'s first).
    pub fn for_case(case: u32) -> Self {
        let mut z = (u64::from(case) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        TestRng {
            state: z ^ (z >> 31),
        }
    }

    /// Next 64 uniformly random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform u64 in [0, bound).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        // Multiply-shift; bias is negligible for test-sized bounds.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A value generator. Strategies are sampled fresh for every case.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width integer range: any value.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = rng.unit_f64() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// Uniform choice among boxed strategies of one value type (the engine
/// behind [`prop_oneof!`]).
pub struct OneOf<T> {
    /// The alternatives.
    pub options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "prop_oneof! needs alternatives");
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod num {
    //! Numeric special-value strategies.
    pub mod f32 {
        //! `f32` strategies.
        use crate::{Strategy, TestRng};

        /// Strategy producing normal (non-zero, non-subnormal, finite)
        /// `f32` values of either sign across the full exponent range.
        #[derive(Debug, Clone, Copy)]
        pub struct NormalF32;

        /// Normal `f32` values, like real proptest's `f32::NORMAL`.
        pub const NORMAL: NormalF32 = NormalF32;

        impl Strategy for NormalF32 {
            type Value = f32;
            fn sample(&self, rng: &mut TestRng) -> f32 {
                let sign = (rng.next_u32() & 1) << 31;
                let exp = 1 + rng.below(254) as u32; // biased exponent 1..=254
                let mant = rng.next_u32() & 0x007F_FFFF;
                f32::from_bits(sign | (exp << 23) | mant)
            }
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        OneOf, ProptestConfig, Strategy, TestRng,
    };
}

/// Define property tests. Each function runs `cases` times with fresh
/// deterministic samples of its strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: the config is hoisted to
/// repetition depth 0 so it can be transcribed inside the per-function
/// repetition.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases: u32 = ($cfg).cases;
                for __case in 0..__cases {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    let __result: ::std::result::Result<(), ()> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    // Err means prop_assume! rejected the case; move on.
                    let _ = __result;
                }
            }
        )*
    };
}

/// Assert inside a property; panics with the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        ::std::assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        ::std::assert!($cond, $($fmt)*)
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        ::std::assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        ::std::assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        ::std::assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        ::std::assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(());
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let __options: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            ::std::vec![$(::std::boxed::Box::new($strat)),+];
        $crate::OneOf { options: __options }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::for_case(3);
        let mut b = TestRng::for_case(3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case(4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..1000 {
            let x = Strategy::sample(&(5u8..10), &mut rng);
            assert!((5..10).contains(&x));
            let y = Strategy::sample(&(0u8..=255), &mut rng);
            let _ = y;
            let f = Strategy::sample(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let n = Strategy::sample(&crate::num::f32::NORMAL, &mut rng);
            assert!(n.is_normal());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro grammar itself: patterns, assume, assert.
        #[test]
        fn macro_roundtrip(mut v in crate::collection::vec(0u32..100, 1..8), pick in 0usize..8) {
            prop_assume!(pick < v.len());
            v.sort_unstable();
            prop_assert!(v[pick] < 100);
            prop_assert_eq!(v.len(), v.capacity().min(v.len()));
        }

        /// prop_oneof picks only listed alternatives.
        #[test]
        fn oneof_members(x in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }
    }
}
