//! Accuracy-driven automatic tuning (paper Appendix A.1).
//!
//! The tuner walks the recipe lattice — formats, static/dynamic, mixed
//! formats, operator fallbacks — evaluating candidates until the 1 %
//! criterion is met, and reports the trace.
//!
//! Run with: `cargo run --release --example autotune`

use fp8_ptq::core::AutoTuner;
use fp8_ptq::models::{build_zoo, ZooFilter};

fn main() {
    let zoo = build_zoo(ZooFilter::Quick);
    let tuner = AutoTuner::new();

    for w in &zoo {
        println!(
            "\n=== {} (fp32 {:.4}, {:?}) ===",
            w.spec.name, w.fp32_score, w.spec.domain
        );
        let outcome = tuner.tune(w);
        for (i, step) in outcome.trace.iter().enumerate() {
            let mark = if Some(i) == outcome.accepted {
                "  <- accepted"
            } else if step.passed {
                "  (passes)"
            } else {
                ""
            };
            println!(
                "  {:<28} score {:.4}  loss {:+.2}%{}",
                step.name,
                step.score,
                step.loss * 100.0,
                mark
            );
        }
        if outcome.accepted.is_none() {
            println!("  -> no recipe met the 1% criterion; model needs FP32 fallbacks");
        }
    }
}
