//! CV walkthrough: a ResNet-style classifier with BatchNorm calibration
//! and the first/last-operator exception (paper §3.1, Figure 7).
//!
//! Run with: `cargo run --release --example cv_resnet_bn_calibration`

use fp8_ptq::core::config::{Approach, DataFormat};
use fp8_ptq::core::workflow::calibrate_workload;
use fp8_ptq::core::{paper_recipe, recalibrate_batchnorm, PtqSession, QuantizedModel};
use fp8_ptq::fp8::Fp8Format;
use fp8_ptq::models::families::common::CvConfig;
use fp8_ptq::models::families::cv::resnet_like;
use fp8_ptq::models::Transform;
use fp8_ptq::nn::UnwrapOk;

fn main() {
    let w = resnet_like(&CvConfig {
        img: 10,
        in_ch: 3,
        width: 12,
        depth: 3,
        classes: 8,
        seed: 7,
        hostility: 0.0,
    });
    println!(
        "workload: {} ({} params, fp32 top-1 {:.4})\n",
        w.spec.name,
        w.graph.param_count(),
        w.fp32_score
    );

    // The paper's CV recipe: E3M4, static, BN calibration, first/last
    // compute ops kept in FP32.
    let cfg = paper_recipe(
        DataFormat::Fp8(Fp8Format::E3M4),
        Approach::Static,
        w.spec.domain,
    );
    let full = PtqSession::new(cfg.clone()).quantize(&w).unwrap_ok();
    println!("E3M4 + BN calibration (paper CV recipe): {:.4}", full.score);

    // Ablation 1: skip BatchNorm calibration.
    let mut no_bn = cfg.clone();
    no_bn.bn_calibration = false;
    println!(
        "E3M4 without BN calibration:             {:.4}",
        PtqSession::new(no_bn).quantize(&w).unwrap_ok().score
    );

    // Ablation 2: quantize the first and last operators too (§4.3.1).
    let all_in = cfg.clone().with_first_last();
    println!(
        "E3M4 with first/last quantized:          {:.4}",
        PtqSession::new(all_in).quantize(&w).unwrap_ok().score
    );

    // Figure-7 style: BN calibration sample size and transform matter.
    println!("\nBN calibration sweep (E3M4):");
    println!(
        "{:>8} {:>16} {:>20}",
        "samples", "train transform", "inference transform"
    );
    let source = w
        .calib_source
        .as_ref()
        .expect("CV workload has a calibration source");
    for n in [16usize, 128, 1024] {
        let mut scores = Vec::new();
        for transform in [Transform::Train, Transform::Inference] {
            let mut plain = cfg.clone();
            plain.bn_calibration = false;
            let calib = calibrate_workload(&w, &plain).unwrap_ok();
            let mut model = QuantizedModel::build(w.graph.clone(), &calib, plain).unwrap_ok();
            let batches = source.sample(n, transform, 99);
            recalibrate_batchnorm(&mut model, &batches).unwrap_ok();
            scores.push(
                w.evaluate_graph(&model.graph, &mut model.hook())
                    .unwrap_ok(),
            );
        }
        println!("{:>8} {:>16.4} {:>20.4}", n, scores[0], scores[1]);
    }
    println!("\n(The paper recommends ~3K samples with the training transform.)");
}
