//! Mixed FP8 formats (paper §3.2, Figure 8, Table 5): E4M3 for
//! range-bound activations, E3M4 for precision-bound weights.
//!
//! Run with: `cargo run --release --example mixed_formats`

use fp8_ptq::core::config::{Approach, DataFormat, QuantConfig};
use fp8_ptq::core::workflow::paper_mixed_recipe;
use fp8_ptq::core::{paper_recipe, PtqSession};
use fp8_ptq::fp8::{fake_quant_fp8, fp8_scale, Fp8Codec, Fp8Format};
use fp8_ptq::models::families::common::{Head, NlpConfig};
use fp8_ptq::models::families::nlp::encoder_workload;
use fp8_ptq::nn::UnwrapOk;
use fp8_ptq::tensor::TensorRng;

fn main() {
    // Part 1 — the tensor-level intuition (Figure 3): a range-bound
    // activation and a precision-bound weight prefer different formats.
    println!("## Tensor-level MSE (Figure 3 distributions)\n");
    let mut rng = TensorRng::seed(7);
    let mut act = rng.normal(&[4096], 0.0, 1.0);
    rng.amplify_channels(&mut act, 0, 40, 50.0); // outliers: range-bound
    let weight = rng.normal(&[4096], 0.0, 0.05); // zero-mean: precision-bound

    println!("{:<22} {:>12} {:>12}", "format", "act MSE", "weight MSE");
    for f in [Fp8Format::E5M2, Fp8Format::E4M3, Fp8Format::E3M4] {
        let codec = Fp8Codec::new(f);
        let mse = |data: &fp8_ptq::tensor::Tensor| {
            let absmax = data.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let mut d = data.data().to_vec();
            fake_quant_fp8(&mut d, &codec, fp8_scale(f, absmax)).mse
        };
        println!(
            "{:<22} {:>12.3e} {:>12.3e}",
            f.to_string(),
            mse(&act),
            mse(&weight)
        );
    }

    // Part 2 — model-level accuracy (Table 5): mixed vs single formats on
    // a heavy-tailed encoder where single E3M4 is range-limited.
    println!("\n## Model-level accuracy (Table 5 analogue)\n");
    let cfg = NlpConfig {
        vocab: 48,
        seq: 16,
        d: 64,
        heads: 4,
        layers: 2,
        ffn_mult: 2,
        seed: 99,
        outlier_gain: 300.0,
        outlier_channels: 1,
        gamma_sigma: 1.6,
    };
    let w = encoder_workload("funnel_like", "mrpc_syn", &cfg, Head::Binary);
    println!(
        "workload: {} (F1 baseline {:.4})",
        w.spec.name, w.fp32_score
    );
    let show = |name: &str, c: &QuantConfig| {
        let out = PtqSession::new(c.clone()).quantize(&w).unwrap_ok();
        println!(
            "  {:<28} F1 {:.4} (loss {:+.2}%)",
            name,
            out.score,
            out.result.loss() * 100.0
        );
    };
    for f in [Fp8Format::E5M2, Fp8Format::E4M3, Fp8Format::E3M4] {
        show(
            &format!("single {f}"),
            &paper_recipe(DataFormat::Fp8(f), Approach::Static, w.spec.domain),
        );
    }
    show(
        "mixed E4M3 act / E3M4 wt",
        &paper_mixed_recipe(w.spec.domain),
    );
    println!("\n(Paper Table 5: mixed formats match or beat the best single format.)");
}
