//! Text generation under quantization (paper Table 4 / Appendix A.3).
//!
//! Greedy-decodes a GPT-style model under each format and compares the
//! continuations against FP32's, plus repetition diagnostics.
//!
//! Run with: `cargo run --release --example textgen`

use fp8_ptq::core::config::{Approach, DataFormat};
use fp8_ptq::core::{paper_recipe, PtqSession};
use fp8_ptq::fp8::Fp8Format;
use fp8_ptq::metrics::{distinct_n, repeated_ngram_rate};
use fp8_ptq::models::families::common::NlpConfig;
use fp8_ptq::models::families::nlp::{decoder_workload, generate_greedy};
use fp8_ptq::nn::NoopHook;
use fp8_ptq::nn::UnwrapOk;

fn main() {
    let cfg = NlpConfig {
        vocab: 48,
        seq: 16,
        d: 64,
        heads: 4,
        layers: 2,
        ffn_mult: 2,
        seed: 1234,
        outlier_gain: 300.0,
        outlier_channels: 1,
        gamma_sigma: 0.8,
    };
    let w = decoder_workload("gpt_like", &cfg);
    let prompt = [3usize, 14, 15, 9, 2, 6];
    let steps = 60;

    let reference = generate_greedy(&w.graph, &cfg, &prompt, steps, &mut NoopHook);
    println!("FP32 continuation: {:?}\n", &reference[..20]);

    for fmt in [
        DataFormat::Fp8(Fp8Format::E5M2),
        DataFormat::Fp8(Fp8Format::E4M3),
        DataFormat::Fp8(Fp8Format::E3M4),
        DataFormat::Int8,
    ] {
        let qcfg = paper_recipe(fmt, Approach::Static, w.spec.domain);
        let out = PtqSession::new(qcfg.clone()).quantize(&w).unwrap_ok();
        let toks = generate_greedy(
            &out.model.graph,
            &cfg,
            &prompt,
            steps,
            &mut out.model.hook(),
        );
        let fidelity = toks.iter().zip(&reference).filter(|(a, b)| a == b).count();
        println!(
            "{:<6} first tokens {:?}…  fidelity {:>2}/{steps}  repeated-4gram {:.2}  distinct-2 {:.2}",
            fmt.to_string(),
            &toks[..8],
            fidelity,
            repeated_ngram_rate(&toks, 4),
            distinct_n(&toks, 2)
        );
    }
    println!(
        "\n(The paper's Table 4: FP8 continuations stay close to FP32; INT8 drifts and loops.)"
    );
}
