//! NLP walkthrough: a BERT-like encoder on an MRPC-style task.
//!
//! Shows the pieces the paper combines for language models:
//! * activation outliers from LayerNorm gains (Figure 3),
//! * why per-tensor INT8 needs SmoothQuant while FP8's dynamic range
//!   absorbs the outliers,
//! * single vs. mixed FP8 formats (E4M3 activations + E3M4 weights).
//!
//! Run with: `cargo run --release --example nlp_encoder_glue`

use fp8_ptq::core::config::{Approach, DataFormat, QuantConfig};
use fp8_ptq::core::workflow::paper_mixed_recipe;
use fp8_ptq::core::{paper_recipe, PtqSession};
use fp8_ptq::fp8::Fp8Format;
use fp8_ptq::models::families::common::{Head, NlpConfig};
use fp8_ptq::models::families::nlp::encoder_workload;
use fp8_ptq::nn::UnwrapOk;
use fp8_ptq::nn::{ExecHook, Node, OpClass};
use fp8_ptq::tensor::Tensor;

fn main() {
    // A BERT-like encoder with strong LayerNorm activation outliers
    // (gain 500x on one channel — the LLM regime).
    let cfg = NlpConfig {
        vocab: 48,
        seq: 16,
        d: 64,
        heads: 4,
        layers: 2,
        ffn_mult: 2,
        seed: 42,
        outlier_gain: 500.0,
        outlier_channels: 1,
        gamma_sigma: 0.6,
    };
    let w = encoder_workload("bert_like", "mrpc_syn", &cfg, Head::Binary);
    println!(
        "workload: {} (F1 baseline {:.4})",
        w.spec.name, w.fp32_score
    );

    // Peek at the activation distribution the paper's Figure 3 shows:
    // LayerNorm outputs carry outliers two orders of magnitude above the
    // bulk.
    struct LnStats {
        absmax: f32,
        rms: f64,
        n: usize,
    }
    impl ExecHook for LnStats {
        fn after_node(&mut self, node: &Node, out: &mut Tensor) {
            if node.op.class() == OpClass::LayerNorm {
                for &v in out.data() {
                    self.absmax = self.absmax.max(v.abs());
                    self.rms += (v as f64) * (v as f64);
                    self.n += 1;
                }
            }
        }
    }
    let mut stats = LnStats {
        absmax: 0.0,
        rms: 0.0,
        n: 0,
    };
    w.graph.run(&w.eval[0], &mut stats).unwrap_ok();
    let rms = (stats.rms / stats.n as f64).sqrt();
    println!(
        "LayerNorm outputs: absmax {:.1}, rms {:.2} — outlier ratio {:.0}x (Figure 3, range-bound)\n",
        stats.absmax,
        rms,
        stats.absmax as f64 / rms
    );

    println!("{:<34} {:>8} {:>8}", "configuration", "F1", "loss");
    let show = |name: &str, cfg: &QuantConfig| {
        let out = PtqSession::new(cfg.clone()).quantize(&w).unwrap_ok();
        println!(
            "{:<34} {:>8.4} {:>7.2}%",
            name,
            out.score,
            out.result.loss() * 100.0
        );
    };

    // INT8 without SmoothQuant: the outlier stretches the per-tensor grid.
    let mut int8_raw = paper_recipe(DataFormat::Int8, Approach::Dynamic, w.spec.domain);
    int8_raw.smoothquant_alpha = None;
    show("INT8 dynamic (no SmoothQuant)", &int8_raw);
    // INT8 with SmoothQuant α=0.5 (the paper's NLP INT8 baseline).
    show(
        "INT8 dynamic + SmoothQuant",
        &paper_recipe(DataFormat::Int8, Approach::Dynamic, w.spec.domain),
    );
    // FP8 singles.
    for f in [Fp8Format::E5M2, Fp8Format::E4M3, Fp8Format::E3M4] {
        show(
            &format!("{f} static"),
            &paper_recipe(DataFormat::Fp8(f), Approach::Static, w.spec.domain),
        );
    }
    // Mixed formats: E4M3 activations (range) + E3M4 weights (precision).
    show(
        "mixed E4M3 act + E3M4 weight",
        &paper_mixed_recipe(w.spec.domain),
    );
}
