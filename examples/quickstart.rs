//! Quickstart: quantize one model to FP8 end-to-end.
//!
//! Builds a ResNet-style workload from the synthetic zoo, runs the
//! paper's E4M3 recipe (calibrate → quantize → BatchNorm-recalibrate →
//! evaluate) and prints the accuracy comparison across all formats.
//!
//! Run with: `cargo run --release --example quickstart`

use fp8_ptq::core::config::{Approach, DataFormat};
use fp8_ptq::core::{paper_recipe, PtqSession};
use fp8_ptq::fp8::Fp8Format;
use fp8_ptq::models::{build_zoo, ZooFilter};
use fp8_ptq::nn::UnwrapOk;

fn main() {
    // A small representative slice of the 75-workload zoo.
    let zoo = build_zoo(ZooFilter::Quick);
    let workload = &zoo[1]; // resnet-style image classifier
    println!(
        "workload: {} ({} params, fp32 accuracy {:.4})\n",
        workload.spec.name,
        workload.graph.param_count(),
        workload.fp32_score
    );

    println!(
        "{:<10} {:>10} {:>10} {:>7}",
        "format", "accuracy", "loss", "pass"
    );
    for format in [
        DataFormat::Fp8(Fp8Format::E5M2),
        DataFormat::Fp8(Fp8Format::E4M3),
        DataFormat::Fp8(Fp8Format::E3M4),
        DataFormat::Int8,
    ] {
        // The paper's per-domain recipe: per-channel weight scaling,
        // absmax activation calibration (E5M2 direct), BatchNorm
        // recalibration for CV models.
        let cfg = paper_recipe(format, Approach::Static, workload.spec.domain);
        let outcome = PtqSession::new(cfg).quantize(workload).unwrap_ok();
        println!(
            "{:<10} {:>10.4} {:>9.2}% {:>7}",
            format.to_string(),
            outcome.score,
            outcome.result.loss() * 100.0,
            if outcome.result.passes() { "yes" } else { "no" }
        );
    }
    println!("\npass = within 1% relative loss of FP32 (the paper's criterion)");
}
