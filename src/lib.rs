//! # fp8-ptq — post-training quantization with FP8 formats
//!
//! A full Rust reproduction of *"Efficient Post-training Quantization
//! with FP8 Formats"* (MLSys 2024): bit-exact E5M2/E4M3/E3M4 codecs, a
//! graph-based inference substrate with quantization hooks, the paper's
//! standard/extended quantization schemes (per-channel weight scaling,
//! absmax range calibration, SmoothQuant, BatchNorm calibration, mixed
//! formats, static/dynamic approaches, accuracy-driven tuning), a
//! 75-workload synthetic model zoo, and a bench harness regenerating
//! every table and figure of the paper's evaluation.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`artifact`] | `ptq-artifact` | versioned on-disk artifact container |
//! | [`fp8`] | `ptq-fp8` | FP8/INT8 numeric codecs (Table 1 formats) |
//! | [`tensor`] | `ptq-tensor` | dense tensors, NN kernels, observer stats |
//! | [`nn`] | `ptq-nn` | graph IR, builder, hooked interpreter |
//! | [`metrics`] | `ptq-metrics` | task metrics, FID proxy, pass rates |
//! | [`models`] | `ptq-models` | the synthetic 75-workload zoo |
//! | [`core`] | `ptq-core` | the PTQ framework (the paper's contribution) |
//!
//! ## Quantize a model in five lines
//!
//! ```no_run
//! use fp8_ptq::core::{paper_recipe, PtqSession, config::{Approach, DataFormat}};
//! use fp8_ptq::fp8::Fp8Format;
//! use fp8_ptq::models::{build_zoo, ZooFilter};
//! use fp8_ptq::nn::UnwrapOk;
//!
//! let zoo = build_zoo(ZooFilter::Quick);
//! let cfg = paper_recipe(DataFormat::Fp8(Fp8Format::E4M3), Approach::Static, zoo[0].spec.domain);
//! let out = PtqSession::new(cfg).quantize(&zoo[0]).unwrap_ok();
//! println!("fp32 {:.4} -> E4M3 {:.4}", zoo[0].fp32_score, out.score);
//! ```

pub use ptq_artifact as artifact;
pub use ptq_core as core;
pub use ptq_fp8 as fp8;
pub use ptq_metrics as metrics;
pub use ptq_models as models;
pub use ptq_nn as nn;
pub use ptq_tensor as tensor;
