#!/usr/bin/env bash
# Per-test wall-time guard: fails if any single test exceeds the limit
# (default 60s, override with TEST_TIME_LIMIT=<seconds>).
#
# libtest's own --report-time is nightly-only, so on stable we enumerate
# every test in every workspace test binary and run each one individually
# under `timeout`. Pass a cargo profile flag (default --release) so CI can
# reuse the artifacts from its build step.
set -euo pipefail
cd "$(dirname "$0")/.."

LIMIT="${TEST_TIME_LIMIT:-60}"
PROFILE_FLAG="${1:---release}"

mapfile -t BINARIES < <(
  cargo test --workspace "$PROFILE_FLAG" --no-run --message-format=json 2>/dev/null |
    python3 -c '
import json, sys
for line in sys.stdin:
    try:
        m = json.loads(line)
    except ValueError:
        continue
    if (m.get("reason") == "compiler-artifact"
            and m.get("profile", {}).get("test")
            and m.get("executable")):
        print(m["executable"])
' | sort -u
)

if [ "${#BINARIES[@]}" -eq 0 ]; then
  echo "error: no test binaries found" >&2
  exit 1
fi

slow=0
failed=0
total=0
for bin in "${BINARIES[@]}"; do
  mapfile -t TESTS < <("$bin" --list --format terse 2>/dev/null | sed -n 's/: test$//p')
  for t in ${TESTS[@]+"${TESTS[@]}"}; do
    total=$((total + 1))
    start=$(date +%s%N)
    rc=0
    timeout "$LIMIT" "$bin" --exact "$t" --test-threads=1 -q >/dev/null 2>&1 || rc=$?
    dur_ms=$((($(date +%s%N) - start) / 1000000))
    name="$(basename "$bin" | sed 's/-[0-9a-f]*$//')::$t"
    if [ "$rc" -eq 124 ]; then
      echo "TOO SLOW  ${name} exceeded ${LIMIT}s"
      slow=$((slow + 1))
    elif [ "$rc" -ne 0 ]; then
      echo "FAILED    ${name} (exit $rc)"
      failed=$((failed + 1))
    else
      printf 'ok %6sms  %s\n' "$dur_ms" "$name"
    fi
  done
done

echo "---"
echo "${total} tests timed, limit ${LIMIT}s: ${slow} too slow, ${failed} failed"
[ "$slow" -eq 0 ] && [ "$failed" -eq 0 ]
