#!/usr/bin/env bash
# Bench regression gates for the FP8 datapath kernels.
#
# Runs two criterion benches with NDJSON output (CRITERION_JSON, see
# vendor/criterion) and compares same-run cost ratios against committed
# baselines:
#
#   act_qq_vs_fakequant — each code-by-code kernel relative to its
#       fused-weight-only reference (ci/bench_baseline_act_qq.json)
#   roofline — each blocked micro-kernel relative to its scalar
#       reference path (ci/bench_baseline_roofline.json); the roofline
#       summary also reports GFLOP/s and fraction-of-roofline computed
#       from the machine probes in the same run
#
# Ratios (coded / reference, same run, same machine) are compared instead
# of absolute times so the gates are stable across runner hardware; a
# measured ratio above baseline * (1 + tolerance) + slack fails.
#
# Outputs machine-readable summaries (uploaded as CI artifacts) to
# bench_results/act_qq_bench_summary.json and
# bench_results/roofline_summary.json.
#
# Environment:
#   CRITERION_MEASURE_MS  measurement window per benchmark (default 800)
#   SKIP_BENCH_RUN=1      reuse existing NDJSON files instead of
#                         re-running the benches (local iteration)
set -euo pipefail
cd "$(dirname "$0")/.."

run_gate() {
    local bench="$1" baseline="$2" ndjson="$3" summary="$4"

    if [ "${SKIP_BENCH_RUN:-0}" != "1" ]; then
        rm -f "$ndjson"
        mkdir -p "$(dirname "$ndjson")"
        # Absolute path: cargo runs bench binaries from the package
        # directory, so a relative CRITERION_JSON would land there.
        CRITERION_JSON="$ndjson" \
        CRITERION_MEASURE_MS="${CRITERION_MEASURE_MS:-800}" \
            cargo bench -p ptq-bench --bench "$bench"
    fi

    test -s "$ndjson" || { echo "no bench output at $ndjson" >&2; exit 1; }
    mkdir -p "$(dirname "$summary")"

    NDJSON="$ndjson" BASELINE="$baseline" SUMMARY="$summary" python3 - <<'EOF'
import json
import os
import sys

ndjson, baseline_path = os.environ["NDJSON"], os.environ["BASELINE"]
recs = {}
with open(ndjson) as f:
    for line in f:
        r = json.loads(line)
        recs[r["id"]] = r["secs_per_iter"]

base = json.load(open(baseline_path))
tol, slack = base["tolerance"], base.get("slack", 0.0)

machine = {}
m = base.get("machine")
if m:
    for kind, id_key, unit_key in (
        ("peak_gflops", "peak_id", "peak_flops_per_iter"),
        ("membw_gbps", "membw_id", "membw_bytes_per_iter"),
    ):
        bid = m[id_key]
        if bid not in recs:
            sys.exit(f"missing machine probe record: {bid}")
        machine[kind] = round(m[unit_key] / recs[bid] / 1e9, 2)
    print(f"machine: {machine}")

rows, failed = [], False
for pair in base["pairs"]:
    group = pair["group"]
    def resolve(key, prefix_key):
        if key in pair:
            bid = f"{group}/{pair[key]}"
            if bid not in recs:
                sys.exit(f"missing benchmark record: {bid}")
            return bid
        prefix = f"{group}/{pair[prefix_key]}"
        hits = [k for k in recs if k.startswith(prefix)]
        if len(hits) != 1:
            sys.exit(f"expected exactly one record under {prefix}, got {hits}")
        return hits[0]
    coded = resolve("coded", "coded_prefix")
    ref = resolve("reference", "reference_prefix")
    ratio = recs[coded] / recs[ref]
    limit = pair["ratio"] * (1.0 + tol) + slack
    ok = ratio <= limit
    failed |= not ok
    row = {
        "coded": coded, "reference": ref,
        "coded_secs": recs[coded], "reference_secs": recs[ref],
        "ratio": round(ratio, 4), "baseline_ratio": pair["ratio"],
        "limit": round(limit, 4), "ok": ok,
    }
    flops = pair.get("flops_per_iter")
    if flops and machine.get("peak_gflops"):
        row["coded_gflops"] = round(flops / recs[coded] / 1e9, 2)
        row["reference_gflops"] = round(flops / recs[ref] / 1e9, 2)
        row["coded_roofline_fraction"] = round(
            row["coded_gflops"] / machine["peak_gflops"], 3)
    rows.append(row)
    mark = "ok  " if ok else "FAIL"
    print(f"{mark} {coded}: ratio {ratio:.3f} "
          f"(baseline {pair['ratio']}, limit {limit:.3f})")

summary = {"tolerance": tol, "slack": slack, "pairs": rows}
if machine:
    summary["machine"] = machine
json.dump(summary, open(os.environ["SUMMARY"], "w"), indent=2)
print(f"summary written to {os.environ['SUMMARY']}")
if failed:
    sys.exit(f"kernels regressed against their same-run reference path; "
             f"investigate or re-baseline {baseline_path}")
EOF
}

run_gate act_qq_vs_fakequant ci/bench_baseline_act_qq.json \
    "${BENCH_NDJSON:-$PWD/target/act_qq_bench.ndjson}" \
    "${BENCH_SUMMARY:-bench_results/act_qq_bench_summary.json}"
run_gate roofline ci/bench_baseline_roofline.json \
    "${ROOFLINE_NDJSON:-$PWD/target/roofline_bench.ndjson}" \
    "${ROOFLINE_SUMMARY:-bench_results/roofline_summary.json}"
echo "bench regression gates OK"
