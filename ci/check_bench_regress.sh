#!/usr/bin/env bash
# Bench regression gate for the FP8 activation datapath.
#
# Runs the act_qq_vs_fakequant criterion bench with NDJSON output
# (CRITERION_JSON, see vendor/criterion) and compares the cost of each
# code-by-code kernel relative to its fused-weight-only reference against
# the committed baseline ratios in ci/bench_baseline_act_qq.json. Ratios
# (coded / reference, same run, same machine) are compared instead of
# absolute times so the gate is stable across runner hardware; a measured
# ratio above baseline * (1 + tolerance) + slack fails.
#
# Outputs a machine-readable summary (uploaded as a CI artifact) to
# $BENCH_SUMMARY (default bench_results/act_qq_bench_summary.json).
#
# Environment:
#   CRITERION_MEASURE_MS  measurement window per benchmark (default 800)
#   BENCH_SUMMARY         summary JSON path
#   SKIP_BENCH_RUN=1      reuse an existing $BENCH_NDJSON instead of
#                         re-running the bench (local iteration)
#   BENCH_NDJSON          raw NDJSON path (default target/act_qq_bench.ndjson)
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=ci/bench_baseline_act_qq.json
# Absolute path: cargo runs bench binaries from the package directory,
# not the workspace root, so a relative CRITERION_JSON would land there.
ndjson="${BENCH_NDJSON:-$PWD/target/act_qq_bench.ndjson}"
summary="${BENCH_SUMMARY:-bench_results/act_qq_bench_summary.json}"

if [ "${SKIP_BENCH_RUN:-0}" != "1" ]; then
    rm -f "$ndjson"
    mkdir -p "$(dirname "$ndjson")"
    CRITERION_JSON="$ndjson" \
    CRITERION_MEASURE_MS="${CRITERION_MEASURE_MS:-800}" \
        cargo bench -p ptq-bench --bench act_qq_vs_fakequant
fi

test -s "$ndjson" || { echo "no bench output at $ndjson" >&2; exit 1; }
mkdir -p "$(dirname "$summary")"

NDJSON="$ndjson" BASELINE="$baseline" SUMMARY="$summary" python3 - <<'EOF'
import json
import os
import sys

ndjson, baseline_path = os.environ["NDJSON"], os.environ["BASELINE"]
recs = {}
with open(ndjson) as f:
    for line in f:
        r = json.loads(line)
        recs[r["id"]] = r["secs_per_iter"]

base = json.load(open(baseline_path))
tol, slack = base["tolerance"], base.get("slack", 0.0)
rows, failed = [], False
for pair in base["pairs"]:
    group = pair["group"]
    def resolve(key, prefix_key):
        if key in pair:
            bid = f"{group}/{pair[key]}"
            if bid not in recs:
                sys.exit(f"missing benchmark record: {bid}")
            return bid
        prefix = f"{group}/{pair[prefix_key]}"
        hits = [k for k in recs if k.startswith(prefix)]
        if len(hits) != 1:
            sys.exit(f"expected exactly one record under {prefix}, got {hits}")
        return hits[0]
    coded = resolve("coded", "coded_prefix")
    ref = resolve("reference", "reference_prefix")
    ratio = recs[coded] / recs[ref]
    limit = pair["ratio"] * (1.0 + tol) + slack
    ok = ratio <= limit
    failed |= not ok
    rows.append({
        "coded": coded, "reference": ref,
        "coded_secs": recs[coded], "reference_secs": recs[ref],
        "ratio": round(ratio, 4), "baseline_ratio": pair["ratio"],
        "limit": round(limit, 4), "ok": ok,
    })
    mark = "ok  " if ok else "FAIL"
    print(f"{mark} {coded}: ratio {ratio:.3f} "
          f"(baseline {pair['ratio']}, limit {limit:.3f})")

json.dump({"tolerance": tol, "slack": slack, "pairs": rows},
          open(os.environ["SUMMARY"], "w"), indent=2)
print(f"summary written to {os.environ['SUMMARY']}")
if failed:
    sys.exit("code-by-code kernels regressed against the fused-weight-only "
             "path; investigate or re-baseline ci/bench_baseline_act_qq.json")
EOF
echo "bench regression gate OK"
