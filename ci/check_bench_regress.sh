#!/usr/bin/env bash
# Bench regression gates for the FP8 datapath kernels.
#
# Runs two criterion benches with NDJSON output (CRITERION_JSON, see
# vendor/criterion) and compares same-run cost ratios against committed
# baselines:
#
#   act_qq_vs_fakequant — each code-by-code kernel relative to its
#       fused-weight-only reference (ci/bench_baseline_act_qq.json)
#   roofline — each blocked micro-kernel relative to its scalar
#       reference path (ci/bench_baseline_roofline.json); the roofline
#       summary also reports GFLOP/s and fraction-of-roofline computed
#       from the machine probes in the same run
#
# Additionally gates the decode_bench bin (not criterion — it saves its
# own bench_results/decode_bench.json): incremental KV-cache decoding
# must stay >= min_speedup x over same-run full-window recompute, stay
# bit-identical under the f32 cache, and FP8 caches must shrink below
# max_fp8_cache_fraction of f32 bytes at bounded logits drift
# (ci/bench_baseline_decode.json).
#
# Ratios (coded / reference, same run, same machine) are compared instead
# of absolute times so the gates are stable across runner hardware; a
# measured ratio above baseline * (1 + tolerance) + slack fails.
#
# Outputs machine-readable summaries (uploaded as CI artifacts) to
# bench_results/act_qq_bench_summary.json and
# bench_results/roofline_summary.json.
#
# Environment:
#   CRITERION_MEASURE_MS  measurement window per benchmark (default 800)
#   SKIP_BENCH_RUN=1      reuse existing NDJSON files instead of
#                         re-running the benches (local iteration)
set -euo pipefail
cd "$(dirname "$0")/.."

run_gate() {
    local bench="$1" baseline="$2" ndjson="$3" summary="$4"

    if [ "${SKIP_BENCH_RUN:-0}" != "1" ]; then
        rm -f "$ndjson"
        mkdir -p "$(dirname "$ndjson")"
        # Absolute path: cargo runs bench binaries from the package
        # directory, so a relative CRITERION_JSON would land there.
        CRITERION_JSON="$ndjson" \
        CRITERION_MEASURE_MS="${CRITERION_MEASURE_MS:-800}" \
            cargo bench -p ptq-bench --bench "$bench"
    fi

    test -s "$ndjson" || { echo "no bench output at $ndjson" >&2; exit 1; }
    mkdir -p "$(dirname "$summary")"

    NDJSON="$ndjson" BASELINE="$baseline" SUMMARY="$summary" python3 - <<'EOF'
import json
import os
import sys

ndjson, baseline_path = os.environ["NDJSON"], os.environ["BASELINE"]
recs = {}
with open(ndjson) as f:
    for line in f:
        r = json.loads(line)
        recs[r["id"]] = r["secs_per_iter"]

base = json.load(open(baseline_path))
tol, slack = base["tolerance"], base.get("slack", 0.0)

machine = {}
m = base.get("machine")
if m:
    for kind, id_key, unit_key in (
        ("peak_gflops", "peak_id", "peak_flops_per_iter"),
        ("membw_gbps", "membw_id", "membw_bytes_per_iter"),
    ):
        bid = m[id_key]
        if bid not in recs:
            sys.exit(f"missing machine probe record: {bid}")
        machine[kind] = round(m[unit_key] / recs[bid] / 1e9, 2)
    print(f"machine: {machine}")

rows, failed = [], False
for pair in base["pairs"]:
    group = pair["group"]
    def resolve(key, prefix_key):
        if key in pair:
            bid = f"{group}/{pair[key]}"
            if bid not in recs:
                sys.exit(f"missing benchmark record: {bid}")
            return bid
        prefix = f"{group}/{pair[prefix_key]}"
        hits = [k for k in recs if k.startswith(prefix)]
        if len(hits) != 1:
            sys.exit(f"expected exactly one record under {prefix}, got {hits}")
        return hits[0]
    coded = resolve("coded", "coded_prefix")
    ref = resolve("reference", "reference_prefix")
    ratio = recs[coded] / recs[ref]
    limit = pair["ratio"] * (1.0 + tol) + slack
    ok = ratio <= limit
    failed |= not ok
    row = {
        "coded": coded, "reference": ref,
        "coded_secs": recs[coded], "reference_secs": recs[ref],
        "ratio": round(ratio, 4), "baseline_ratio": pair["ratio"],
        "limit": round(limit, 4), "ok": ok,
    }
    flops = pair.get("flops_per_iter")
    if flops and machine.get("peak_gflops"):
        row["coded_gflops"] = round(flops / recs[coded] / 1e9, 2)
        row["reference_gflops"] = round(flops / recs[ref] / 1e9, 2)
        row["coded_roofline_fraction"] = round(
            row["coded_gflops"] / machine["peak_gflops"], 3)
    rows.append(row)
    mark = "ok  " if ok else "FAIL"
    print(f"{mark} {coded}: ratio {ratio:.3f} "
          f"(baseline {pair['ratio']}, limit {limit:.3f})")

summary = {"tolerance": tol, "slack": slack, "pairs": rows}
if machine:
    summary["machine"] = machine
json.dump(summary, open(os.environ["SUMMARY"], "w"), indent=2)
print(f"summary written to {os.environ['SUMMARY']}")
if failed:
    sys.exit(f"kernels regressed against their same-run reference path; "
             f"investigate or re-baseline {baseline_path}")
EOF
}

run_decode_gate() {
    local baseline="$1" results="bench_results/decode_bench.json"

    if [ "${SKIP_BENCH_RUN:-0}" != "1" ]; then
        cargo run --release -p ptq-bench --bin decode_bench -- --quick
    fi
    test -s "$results" || { echo "no decode results at $results" >&2; exit 1; }

    RESULTS="$results" BASELINE="$baseline" python3 - <<'EOF'
import json
import os
import sys

r = json.load(open(os.environ["RESULTS"]))
base = json.load(open(os.environ["BASELINE"]))

rows = {row["cache"]: row for row in r["rows"]}
f32 = rows.get("f32") or sys.exit("no f32-cache row in decode results")
if not f32["bit_identical"]:
    sys.exit("f32-cache incremental decode is no longer bit-identical "
             "to full-window recompute")
if f32["speedup"] < base["min_speedup"]:
    sys.exit(f"decode speedup regressed: {f32['speedup']:.2f}x < "
             f"{base['min_speedup']}x floor (seq {r['seq']})")
print(f"ok   decode/f32: {f32['speedup']:.2f}x over full-window "
      f"(floor {base['min_speedup']}x), bit-identical")

fp8 = [row for name, row in rows.items() if name.startswith("fp8-")]
if len(fp8) < 3:
    sys.exit(f"expected 3 FP8 cache rows, got {len(fp8)}")
for row in fp8:
    frac = row["cache_bytes"] / row["cache_bytes_f32"]
    if frac >= base["max_fp8_cache_fraction"]:
        sys.exit(f"{row['cache']}: cache fraction {frac:.3f} >= "
                 f"{base['max_fp8_cache_fraction']}")
    if row["max_rel_drift"] > base["max_fp8_drift"]:
        sys.exit(f"{row['cache']}: logits drift {row['max_rel_drift']:.3f} "
                 f"> {base['max_fp8_drift']} bound")
    print(f"ok   decode/{row['cache']}: {frac:.3f} of f32 cache bytes, "
          f"max drift {row['max_rel_drift']:.2e}, "
          f"{row['speedup']:.2f}x over full-window")
EOF
}

run_gate act_qq_vs_fakequant ci/bench_baseline_act_qq.json \
    "${BENCH_NDJSON:-$PWD/target/act_qq_bench.ndjson}" \
    "${BENCH_SUMMARY:-bench_results/act_qq_bench_summary.json}"
run_gate roofline ci/bench_baseline_roofline.json \
    "${ROOFLINE_NDJSON:-$PWD/target/roofline_bench.ndjson}" \
    "${ROOFLINE_SUMMARY:-bench_results/roofline_summary.json}"
run_decode_gate ci/bench_baseline_decode.json
echo "bench regression gates OK"
