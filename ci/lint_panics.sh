#!/usr/bin/env bash
# Panic lint: forbid unwrap()/expect(/panic!( in non-test library code of
# the panic-free crates (crates/artifact, crates/fp8, crates/tensor,
# crates/nn, crates/core, crates/trace, crates/serve).
#
# The inference/PTQ stack guarantees a panic-free Result-based surface
# (see DESIGN.md "Error handling"). This gate keeps it that way: any new
# `unwrap()`, `.expect(...)` or `panic!(...)` under the crates listed in
# the find below, outside `#[cfg(test)]` modules, fails
# CI unless the line contains an allowlisted substring
# (ci/panic_allowlist.txt) — in practice only the documented
# `panic!("{e}")` wrapper form.
#
# Notes on scope:
#   * `#[cfg(test)]` is assumed to start the trailing test module of a
#     file (the repo convention); everything from that line to EOF is
#     ignored.
#   * `unwrap_or(...)`, `unwrap_or_else(...)`, `unwrap_or_default()` are
#     fine and do not match the `unwrap()` pattern.
set -euo pipefail
cd "$(dirname "$0")/.."

allowlist=ci/panic_allowlist.txt
fail=0

# shellcheck disable=SC2044
for f in $(find crates/artifact/src crates/fp8/src crates/tensor/src crates/nn/src crates/core/src crates/trace/src crates/serve/src -name '*.rs' | sort); do
    # Strip the trailing #[cfg(test)] module, then scan for forbidden
    # patterns, keeping real line numbers.
    matches=$(awk '/^#\[cfg\(test\)\]/{exit} /unwrap\(\)|\.expect\(|panic!\(/{print FILENAME":"FNR": "$0}' "$f" || true)
    [ -z "$matches" ] && continue
    while IFS= read -r line; do
        allowed=0
        while IFS= read -r pat; do
            case "$pat" in ''|'#'*) continue ;; esac
            case "$line" in *"$pat"*) allowed=1; break ;; esac
        done < "$allowlist"
        if [ "$allowed" -eq 0 ]; then
            echo "forbidden panic pattern: $line" >&2
            fail=1
        fi
    done <<< "$matches"
done

if [ "$fail" -ne 0 ]; then
    echo >&2
    echo "artifact/fp8/tensor/nn/core/trace/serve library code must stay panic-free:" >&2
    echo "return Result<_, Fp8Error/PtqError/ServeError> instead, or (for" >&2
    echo "a documented panicking wrapper) re-raise a typed error as" >&2
    echo "panic!(\"{e}\"). See ci/panic_allowlist.txt." >&2
    exit 1
fi
echo "panic lint OK: no stray unwrap()/expect(/panic!( in artifact/fp8/tensor/nn/core/trace/serve"
