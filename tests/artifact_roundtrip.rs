//! Save→load round-trip battery for the versioned PTQ artifact format.
//!
//! The contract under test (ISSUE 8 acceptance): a loaded model is
//! *bit-identical* to the freshly quantized one — same artifact bytes when
//! re-saved, same inference bits through both executors and both kernel
//! paths — across the quick zoo, all three FP8 formats, both weight
//! granularities and both activation granularities.

use fp8_ptq::core::config::{ActGranularity, Granularity, QuantConfig};
use fp8_ptq::core::{CalibrationHook, KernelPath, PtqArtifact, PtqSession, QuantizedModel};
use fp8_ptq::fp8::Fp8Format;
use fp8_ptq::models::{build_zoo, Workload, ZooFilter};
use fp8_ptq::nn::{GraphBuilder, UnwrapOk};
use fp8_ptq::tensor::{Tensor, TensorRng};
use proptest::prelude::*;
use rayon::prelude::*;

fn scratch(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ptq-roundtrip-{}-{name}.ptq", std::process::id()));
    p
}

/// Quantize `w` under `cfg`, round-trip through a file, and assert the
/// three bit-identity properties: byte-identical re-save, bit-identical
/// planned-executor score, bit-identical interpreter outputs.
fn assert_roundtrip(w: &Workload, cfg: QuantConfig, name: &str) {
    let out = PtqSession::new(cfg).quantize(w).unwrap_ok();
    let path = scratch(name);
    out.model.save(&path).unwrap_ok();
    let loaded = QuantizedModel::load(&path).unwrap_ok();
    std::fs::remove_file(&path).ok();

    // save → load → save is byte-identical.
    assert_eq!(
        loaded.artifact_bytes(),
        out.model.artifact_bytes(),
        "{name}: re-saved artifact bytes differ"
    );
    // Planned executor: same score, bit for bit.
    let score = w
        .evaluate_graph(&loaded.graph, &mut loaded.hook())
        .unwrap_ok();
    assert_eq!(
        score.to_bits(),
        out.score.to_bits(),
        "{name}: loaded-model score diverged"
    );
    // Interpreter: same output tensors, bit for bit, loaded vs in-memory.
    let batch = &w.eval[0];
    let y_mem = w.graph.run(batch, &mut out.model.hook()).unwrap_ok();
    let y_load = loaded.graph.run(batch, &mut loaded.hook()).unwrap_ok();
    assert_eq!(y_mem.len(), y_load.len(), "{name}: output arity diverged");
    for (a, b) in y_mem.iter().zip(&y_load) {
        assert_eq!(a.shape(), b.shape(), "{name}: output shape diverged");
        let same = a
            .data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "{name}: interpreter outputs diverged bitwise");
    }
}

#[test]
fn zoo_save_load_is_bit_identical_for_every_fp8_format() {
    let zoo = build_zoo(ZooFilter::Quick);
    let cells: Vec<(usize, Fp8Format)> = (0..zoo.len())
        .flat_map(|i| Fp8Format::ALL.iter().map(move |&f| (i, f)))
        .collect();
    cells.par_iter().for_each(|&(i, format)| {
        let w = &zoo[i];
        let name = format!("zoo{i}-{format}");
        assert_roundtrip(w, QuantConfig::fp8(format), &name);
    });
}

#[test]
fn granularity_and_kernel_path_matrix_roundtrips() {
    let zoo = build_zoo(ZooFilter::Quick);
    let weight_gs = [Granularity::PerChannel, Granularity::PerTensor];
    let act_gs = [ActGranularity::PerTensor, ActGranularity::PerTile(8)];
    let paths = [KernelPath::Blocked, KernelPath::ScalarReference];
    let mut cells = Vec::new();
    for (wi, &wg) in weight_gs.iter().enumerate() {
        for &ag in &act_gs {
            for &kp in &paths {
                // Alternate the workload so both fixtures get coverage
                // without quadrupling the run time.
                cells.push((wi % zoo.len(), wg, ag, kp));
            }
        }
    }
    cells.par_iter().for_each(|&(i, wg, ag, kp)| {
        let mut cfg = QuantConfig::fp8(Fp8Format::E4M3)
            .with_act_granularity(ag)
            .with_kernel_path(kp);
        cfg.weight_granularity = wg;
        let name = format!("matrix{i}-{wg:?}-{ag:?}-{kp:?}");
        assert_roundtrip(&zoo[i], cfg, &name);
    });
}

#[test]
fn mixed_format_and_int8_recipes_roundtrip() {
    let zoo = build_zoo(ZooFilter::Quick);
    let recipes = vec![
        (0usize, QuantConfig::mixed_fp8()),
        (1, QuantConfig::int8()),
        (2, QuantConfig::fp8(Fp8Format::E4M3).with_smoothquant(0.5)),
    ];
    recipes.par_iter().for_each(|(i, cfg)| {
        let name = format!("recipe{i}");
        assert_roundtrip(&zoo[*i], cfg.clone(), &name);
    });
}

/// A small random MLP plus its calibration data, for the property tests.
fn random_model(
    widths: &[usize],
    seed: u64,
    rows: usize,
) -> (fp8_ptq::nn::Graph, fp8_ptq::core::CalibData, Tensor) {
    let mut rng = TensorRng::seed(seed);
    let mut b = GraphBuilder::new();
    let x = b.input();
    let mut cur = x;
    for i in 1..widths.len() {
        let w = b.param(rng.kaiming(&[widths[i], widths[i - 1]]));
        cur = b.linear(cur, w, None);
        if i + 1 < widths.len() {
            cur = b.relu(cur);
        }
    }
    let g = b.finish(vec![cur]);
    let calib_x = TensorRng::seed(seed ^ 0xC0FFEE).normal(&[rows, widths[0]], 0.0, 1.0);
    let mut hook = CalibrationHook::new();
    g.run(std::slice::from_ref(&calib_x), &mut hook).unwrap_ok();
    (g, hook.into_data(), calib_x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary shapes × formats × granularities survive
    /// save→load→save with byte-identical bytes and bit-identical
    /// inference (interpreter path).
    #[test]
    fn arbitrary_models_roundtrip_bit_exactly(
        widths in proptest::collection::vec(1usize..14, 2..5),
        seed in 0u64..10_000,
        rows in 1usize..5,
        format_pick in 0u8..3,
        per_tensor_weights in 0u8..2,
        tile in 0usize..12,
        scalar_path in 0u8..2,
    ) {
        let format = Fp8Format::ALL[format_pick as usize % 3];
        let mut cfg = QuantConfig::fp8(format);
        if per_tensor_weights == 1 {
            cfg.weight_granularity = Granularity::PerTensor;
        }
        if tile > 0 {
            cfg = cfg.with_act_granularity(ActGranularity::PerTile(tile));
        }
        if scalar_path == 1 {
            cfg = cfg.with_kernel_path(KernelPath::ScalarReference);
        }
        let (g, calib, x) = random_model(&widths, seed, rows);
        let model = QuantizedModel::build(g, &calib, cfg).unwrap_ok();

        let bytes = model.artifact_bytes();
        let art = PtqArtifact::from_bytes(bytes.clone()).unwrap_ok();
        prop_assert_eq!(art.to_bytes(), bytes, "second save not byte-identical");

        let y_mem = model.graph.run(std::slice::from_ref(&x), &mut model.hook()).unwrap_ok();
        let y_load = art.model.graph.run(&[x], &mut art.model.hook()).unwrap_ok();
        for (a, b) in y_mem.iter().zip(&y_load) {
            prop_assert_eq!(a.shape(), b.shape());
            for (p, q) in a.data().iter().zip(b.data()) {
                prop_assert_eq!(p.to_bits(), q.to_bits(), "inference diverged bitwise");
            }
        }
    }
}
