//! Corruption-injection battery for the PTQ artifact format.
//!
//! Every byte of a real artifact is flipped, every truncation length is
//! tried, and the header fields (magic, version, chunk count, chunk
//! lengths, CRCs) are attacked directly. The contract: a damaged artifact
//! either fails with a *typed* error or — when the damage lands in bytes
//! outside the checksummed payloads, i.e. alignment padding — decodes to a
//! model whose canonical re-encoding equals the pristine artifact.
//! Never a panic; never a silently different model.

use fp8_ptq::artifact::ArtifactError;
use fp8_ptq::core::config::QuantConfig;
use fp8_ptq::core::{CalibrationHook, PtqArtifact, QuantizedModel};
use fp8_ptq::fp8::Fp8Format;
use fp8_ptq::nn::{GraphBuilder, PtqError, UnwrapOk};
use fp8_ptq::tensor::TensorRng;

/// A small but representative artifact: FP8-stored weights (QWEIGHTS code
/// blob), per-channel scales, static activation scales, and SmoothQuant
/// divisors all populated.
fn fp8_artifact_bytes() -> Vec<u8> {
    let mut rng = TensorRng::seed(11);
    let mut b = GraphBuilder::new();
    let x = b.input();
    let w1 = b.param(rng.kaiming(&[6, 5]));
    let h = b.linear(x, w1, None);
    let h = b.relu(h);
    let w2 = b.param(rng.kaiming(&[3, 6]));
    let y = b.linear(h, w2, None);
    let g = b.finish(vec![y]);
    let calib_x = TensorRng::seed(12).normal(&[4, 5], 0.0, 1.0);
    let mut hook = CalibrationHook::new();
    g.run(&[calib_x], &mut hook).unwrap_ok();
    let cfg = QuantConfig::fp8(Fp8Format::E4M3).with_smoothquant(0.5);
    let model = QuantizedModel::build(g, &hook.into_data(), cfg).unwrap_ok();
    model.artifact_bytes()
}

/// An INT8-recipe artifact: dense f32 WEIGHTS and ACT_INT8 codecs
/// populated (the chunks the FP8 fixture leaves empty).
fn int8_artifact_bytes() -> Vec<u8> {
    let mut rng = TensorRng::seed(21);
    let mut b = GraphBuilder::new();
    let x = b.input();
    let w1 = b.param(rng.kaiming(&[4, 7]));
    let y = b.linear(x, w1, None);
    let g = b.finish(vec![y]);
    let calib_x = TensorRng::seed(22).normal(&[3, 7], 0.0, 1.0);
    let mut hook = CalibrationHook::new();
    g.run(&[calib_x], &mut hook).unwrap_ok();
    let model = QuantizedModel::build(g, &hook.into_data(), QuantConfig::int8()).unwrap_ok();
    model.artifact_bytes()
}

/// Flip one byte and parse: either a typed error or a model that
/// re-encodes to the pristine bytes.
fn assert_flip_safe(pristine: &[u8], i: usize, delta: u8) {
    let mut bad = pristine.to_vec();
    bad[i] ^= delta;
    match PtqArtifact::from_bytes(bad) {
        Err(_) => {} // typed rejection: the common case
        Ok(art) => {
            assert_eq!(
                art.to_bytes(),
                pristine,
                "byte {i} flip parsed but decoded a different model"
            );
        }
    }
}

#[test]
fn every_byte_flip_is_typed_or_content_identical_fp8() {
    let bytes = fp8_artifact_bytes();
    assert!(
        PtqArtifact::from_bytes(bytes.clone()).is_ok(),
        "pristine artifact must parse"
    );
    for i in 0..bytes.len() {
        assert_flip_safe(&bytes, i, 0x5A);
        assert_flip_safe(&bytes, i, 0xFF);
    }
}

#[test]
fn every_byte_flip_is_typed_or_content_identical_int8() {
    let bytes = int8_artifact_bytes();
    assert!(PtqArtifact::from_bytes(bytes.clone()).is_ok());
    for i in 0..bytes.len() {
        assert_flip_safe(&bytes, i, 0x01);
    }
}

#[test]
fn truncation_at_every_length_is_a_typed_error() {
    let bytes = fp8_artifact_bytes();
    for len in 0..bytes.len() {
        let err = PtqArtifact::from_bytes(bytes[..len].to_vec())
            .err()
            .unwrap_or_else(|| panic!("truncation to {len} bytes parsed successfully"));
        assert!(
            matches!(err, PtqError::Artifact(_)),
            "truncation to {len}: unexpected error class {err}"
        );
    }
}

#[test]
fn trailing_garbage_is_rejected_by_name() {
    let mut bytes = fp8_artifact_bytes();
    bytes.extend_from_slice(&[0xAB; 7]);
    let err = PtqArtifact::from_bytes(bytes).unwrap_err();
    match err {
        PtqError::Artifact(ArtifactError::TrailingGarbage { bytes }) => assert_eq!(bytes, 7),
        other => panic!("expected TrailingGarbage, got {other}"),
    }
}

#[test]
fn bad_magic_is_rejected_by_name() {
    let mut bytes = fp8_artifact_bytes();
    bytes[0] ^= 0x20;
    let err = PtqArtifact::from_bytes(bytes).unwrap_err();
    assert!(
        matches!(err, PtqError::Artifact(ArtifactError::BadMagic)),
        "expected BadMagic, got {err}"
    );
}

#[test]
fn future_version_is_rejected_with_a_clear_message() {
    let mut bytes = fp8_artifact_bytes();
    // Header layout: 8-byte magic, then the u32 version.
    let v = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    bytes[8..12].copy_from_slice(&(v + 1).to_le_bytes());
    let err = PtqArtifact::from_bytes(bytes).unwrap_err();
    match err {
        PtqError::Artifact(ArtifactError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, v + 1);
            assert_eq!(supported, v);
        }
        other => panic!("expected UnsupportedVersion, got {other}"),
    }
    // The message tells the operator what to do.
    let msg = PtqArtifact::from_bytes({
        let mut b = fp8_artifact_bytes();
        b[8..12].copy_from_slice(&(v + 1).to_le_bytes());
        b
    })
    .unwrap_err()
    .to_string();
    assert!(msg.contains("version"), "unhelpful message: {msg}");
}

#[test]
fn chunk_length_field_corruption_is_typed() {
    let bytes = fp8_artifact_bytes();
    // The first chunk header sits right after the 16-byte container
    // header: tag u32, crc u32, then the u64 length at offset 24.
    for delta in [1u64, 1 << 32, u64::MAX / 2] {
        let mut bad = bytes.clone();
        let len = u64::from_le_bytes(bad[24..32].try_into().unwrap());
        bad[24..32].copy_from_slice(&len.wrapping_add(delta).to_le_bytes());
        let err = PtqArtifact::from_bytes(bad).unwrap_err();
        assert!(
            matches!(err, PtqError::Artifact(_)),
            "length += {delta}: unexpected error class {err}"
        );
    }
}

#[test]
fn payload_body_corruption_fails_the_checksum() {
    let bytes = fp8_artifact_bytes();
    // Flip a byte in the middle of the first chunk payload (offset 32 is
    // the first payload byte; the GRAPH chunk is comfortably larger).
    let mut bad = bytes.clone();
    bad[40] ^= 0x80;
    let err = PtqArtifact::from_bytes(bad).unwrap_err();
    assert!(
        matches!(
            err,
            PtqError::Artifact(ArtifactError::ChecksumMismatch { .. })
        ),
        "expected ChecksumMismatch, got {err}"
    );
}

#[test]
fn missing_chunks_are_reported_not_defaulted() {
    // A structurally valid container with no chunks at all parses at the
    // container level but must fail model decoding with MissingChunk —
    // an artifact without a graph is not an empty model.
    let empty = fp8_ptq::artifact::ArtifactWriter::new().finish();
    let err = PtqArtifact::from_bytes(empty).unwrap_err();
    assert!(
        matches!(err, PtqError::Artifact(ArtifactError::MissingChunk { .. })),
        "expected MissingChunk, got {err}"
    );
}
