//! Cross-crate integration tests: full PTQ workflows over the quick zoo.
//!
//! These exercise the complete pipeline (zoo construction → calibration →
//! quantization → evaluation) and assert the *structural* properties every
//! run must satisfy. Paper-shape assertions over the full 75-workload zoo
//! live in the bench binaries (EXPERIMENTS.md); these tests use the quick
//! zoo to stay fast.

use fp8_ptq::core::config::{Approach, Coverage, DataFormat, QuantConfig};
use fp8_ptq::core::workflow::calibrate_workload;
use fp8_ptq::core::{paper_recipe, AutoTuner, PtqSession, QuantizedModel};
use fp8_ptq::fp8::Fp8Format;
use fp8_ptq::metrics::{Domain, PassRateSummary};
use fp8_ptq::models::{build_zoo, ZooFilter};
use fp8_ptq::nn::UnwrapOk;
use rayon::prelude::*;

#[test]
fn quick_zoo_has_sane_baselines() {
    let zoo = build_zoo(ZooFilter::Quick);
    assert_eq!(zoo.len(), 8);
    for w in &zoo {
        assert!(
            w.fp32_score > 0.5 && w.fp32_score <= 1.0 + 1e-9,
            "{}: fp32 {}",
            w.spec.name,
            w.fp32_score
        );
        // Re-evaluation is deterministic.
        let again = w.evaluate(&mut fp8_ptq::nn::NoopHook).unwrap_ok();
        assert_eq!(again, w.fp32_score, "{}", w.spec.name);
    }
}

#[test]
fn every_format_quantizes_every_quick_workload() {
    let zoo = build_zoo(ZooFilter::Quick);
    let formats = [
        DataFormat::Fp8(Fp8Format::E5M2),
        DataFormat::Fp8(Fp8Format::E4M3),
        DataFormat::Fp8(Fp8Format::E3M4),
        DataFormat::Int8,
    ];
    // One (workload, format) cell per parallel job: this is the biggest
    // test in the suite, and the 60s-per-test CI guard times it serially.
    let cells: Vec<(usize, DataFormat)> = (0..zoo.len())
        .flat_map(|i| formats.iter().map(move |&f| (i, f)))
        .collect();
    let results: Vec<_> = cells
        .par_iter()
        .map(|&(i, fmt)| {
            let w = &zoo[i];
            let cfg = paper_recipe(fmt, Approach::Static, w.spec.domain);
            let out = PtqSession::new(cfg).quantize(w).unwrap_ok();
            assert!(
                out.score.is_finite() && out.score >= -1.0 && out.score <= 1.0 + 1e-9,
                "{} {fmt}: score {}",
                w.spec.name,
                out.score
            );
            // Quantization must not be a silent no-op: some nodes run
            // quantized and some weights were substituted — either as
            // fake-quant f32 tensors or as FP8-stored codes.
            assert!(!out.model.quantized_nodes.is_empty(), "{}", w.spec.name);
            assert!(
                !out.model.weights.is_empty() || !out.model.qweights.is_empty(),
                "{}",
                w.spec.name
            );
            // FP8 formats store Conv2d/Linear weights as codes by default.
            if matches!(fmt, DataFormat::Fp8(_)) {
                assert!(!out.model.qweights.is_empty(), "{} {fmt}", w.spec.name);
            }
            out.result
        })
        .collect();
    let summary = PassRateSummary::of(&results);
    assert!(summary.n == zoo.len() * formats.len());
    // Quantization is lossy but not catastrophic in aggregate.
    assert!(summary.all > 0.2, "aggregate pass rate {}", summary.all);
}

#[test]
fn e4m3_beats_e5m2_in_aggregate() {
    // The headline precision ordering, over the quick zoo.
    let zoo = build_zoo(ZooFilter::Quick);
    // Parallel over workloads; collect preserves input order, so the
    // accumulation below sums in the same order as a serial loop.
    let losses: Vec<(f64, f64)> = zoo
        .par_iter()
        .map(|w| {
            let e5 = PtqSession::new(paper_recipe(
                DataFormat::Fp8(Fp8Format::E5M2),
                Approach::Static,
                w.spec.domain,
            ))
            .quantize(w)
            .unwrap_ok();
            let e4 = PtqSession::new(paper_recipe(
                DataFormat::Fp8(Fp8Format::E4M3),
                Approach::Static,
                w.spec.domain,
            ))
            .quantize(w)
            .unwrap_ok();
            (e5.result.loss(), e4.result.loss())
        })
        .collect();
    let mut loss_e5 = 0.0;
    let mut loss_e4 = 0.0;
    for (l5, l4) in &losses {
        loss_e5 += l5;
        loss_e4 += l4;
    }
    assert!(
        loss_e4 < loss_e5,
        "mean loss: E4M3 {} vs E5M2 {}",
        loss_e4 / zoo.len() as f64,
        loss_e5 / zoo.len() as f64
    );
}

#[test]
fn bn_calibration_applies_only_to_bn_models() {
    let zoo = build_zoo(ZooFilter::Quick);
    let cfg = paper_recipe(
        DataFormat::Fp8(Fp8Format::E3M4),
        Approach::Static,
        Domain::Cv,
    );
    assert!(cfg.bn_calibration);
    for w in zoo.iter().filter(|w| w.spec.domain == Domain::Cv) {
        // Must run without panicking whether or not the model has BN.
        let out = PtqSession::new(cfg.clone()).quantize(w).unwrap_ok();
        assert!(out.score.is_finite());
    }
}

#[test]
fn extended_coverage_quantizes_more_nodes() {
    let zoo = build_zoo(ZooFilter::Quick);
    let w = zoo
        .iter()
        .find(|w| w.spec.name.contains("bert"))
        .expect("quick zoo has a bert-like member");
    let std_cfg = QuantConfig::fp8(Fp8Format::E4M3);
    let ext_cfg = std_cfg.clone().with_coverage(Coverage::Extended);
    let calib = calibrate_workload(w, &std_cfg).unwrap_ok();
    let m_std = QuantizedModel::build(w.graph.clone(), &calib, std_cfg).unwrap_ok();
    let m_ext = QuantizedModel::build(w.graph.clone(), &calib, ext_cfg).unwrap_ok();
    assert!(
        m_ext.quantized_nodes.len() > m_std.quantized_nodes.len(),
        "extended {} vs standard {}",
        m_ext.quantized_nodes.len(),
        m_std.quantized_nodes.len()
    );
    // Extended still evaluates to a finite score.
    let s = w
        .evaluate_graph(&m_ext.graph, &mut m_ext.hook())
        .unwrap_ok();
    assert!(s.is_finite());
}

#[test]
fn dynamic_and_static_agree_when_calibration_matches_eval() {
    // For a workload whose calibration data equals its eval data
    // distribution, static absmax scales are near the dynamic ones, so
    // scores should be close (not necessarily equal).
    let zoo = build_zoo(ZooFilter::Quick);
    let w = &zoo[0];
    let s = PtqSession::new(paper_recipe(
        DataFormat::Fp8(Fp8Format::E3M4),
        Approach::Static,
        w.spec.domain,
    ))
    .quantize(w)
    .unwrap_ok()
    .score;
    let d = PtqSession::new(paper_recipe(
        DataFormat::Fp8(Fp8Format::E3M4),
        Approach::Dynamic,
        w.spec.domain,
    ))
    .quantize(w)
    .unwrap_ok()
    .score;
    assert!((s - d).abs() < 0.15, "static {s} vs dynamic {d}");
}

#[test]
fn tuner_finds_recipes_for_most_quick_workloads() {
    let zoo = build_zoo(ZooFilter::Quick);
    let tuner = AutoTuner {
        criterion: 0.05, // relaxed: quick models are small and noisy
        first_fit: true,
    };
    let mut accepted = 0;
    for w in &zoo {
        let out = tuner.tune(w);
        assert!(!out.trace.is_empty());
        if out.accepted.is_some() {
            accepted += 1;
        }
    }
    assert!(
        accepted >= zoo.len() / 2,
        "only {accepted}/{} tuned",
        zoo.len()
    );
}

#[test]
fn fallback_nodes_are_respected() {
    let zoo = build_zoo(ZooFilter::Quick);
    let w = &zoo[1];
    let base = paper_recipe(
        DataFormat::Fp8(Fp8Format::E4M3),
        Approach::Static,
        w.spec.domain,
    );
    let calib = calibrate_workload(w, &base).unwrap_ok();
    let m_full = QuantizedModel::build(w.graph.clone(), &calib, base.clone()).unwrap_ok();
    let some_node = *m_full
        .quantized_nodes
        .iter()
        .next()
        .expect("at least one quantized node");
    let m_fb = QuantizedModel::build(
        w.graph.clone(),
        &calib,
        base.clone().with_fallback(some_node),
    )
    .unwrap_ok();
    assert!(!m_fb.quantized_nodes.contains(&some_node));
    assert_eq!(m_fb.quantized_nodes.len() + 1, m_full.quantized_nodes.len());
}
