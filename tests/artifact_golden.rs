//! Golden-artifact compatibility pin.
//!
//! `tests/golden/quantized_e4m3_v3.ptq` is a committed version-3 artifact
//! (quick-zoo workload 0, E4M3 recipe, default serving section and
//! kv_storage knob, written by `PtqSession::save_artifact`). Today's
//! reader must keep loading it and scoring it bit-equal to the pinned
//! output below — any wire-format change that breaks old artifacts fails
//! here instead of in the field. The writer is pinned too: re-encoding
//! the loaded artifact must reproduce the committed bytes, so the format
//! cannot drift silently even in a compatible-reader direction.
//!
//! The superseded version-2 fixture stays committed as
//! `tests/golden/quantized_e4m3_v2.ptq`: it pins the *rejection* path, so
//! old files fail with a clear `UnsupportedVersion` instead of being
//! misparsed.
//!
//! To regenerate after an *intentional* format change (bump VERSION in
//! `crates/artifact` first, keep the old fixture for the rejection test):
//!
//! ```text
//! cargo test --release --test artifact_golden regenerate -- --ignored --nocapture
//! ```

use fp8_ptq::artifact::{ArtifactError, ArtifactReader};
use fp8_ptq::core::config::QuantConfig;
use fp8_ptq::core::{PtqArtifact, PtqSession};
use fp8_ptq::fp8::Fp8Format;
use fp8_ptq::models::{build_zoo, ZooFilter};
use fp8_ptq::nn::UnwrapOk;
use std::path::PathBuf;

const FIXTURE: &str = "tests/golden/quantized_e4m3_v3.ptq";

/// The previous-format fixture, kept only to pin the version-rejection
/// error (see `reader_rejects_the_previous_version_with_a_clear_error`).
const OLD_FIXTURE: &str = "tests/golden/quantized_e4m3_v2.ptq";

/// Pinned quantized eval score of the fixture model on quick-zoo
/// workload 0, as IEEE-754 bits. Set by the `regenerate` test; must never
/// change for an existing fixture.
const GOLDEN_SCORE_BITS: u64 = 0x3FEF000000000000;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(FIXTURE)
}

#[test]
fn golden_artifact_loads_and_scores_bit_equal_to_the_pin() {
    let art = PtqArtifact::load(&fixture_path()).unwrap_ok();
    assert!(
        !art.thresholds.is_empty(),
        "fixture must carry calibration thresholds"
    );
    let zoo = build_zoo(ZooFilter::Quick);
    let w = &zoo[0];
    let score = w
        .evaluate_graph(&art.model.graph, &mut art.model.hook())
        .unwrap_ok();
    assert_eq!(
        score.to_bits(),
        GOLDEN_SCORE_BITS,
        "golden artifact scored {score} ({:#018X}), pinned {:#018X}",
        score.to_bits(),
        GOLDEN_SCORE_BITS
    );
}

#[test]
fn golden_artifact_bytes_are_reproduced_by_todays_writer() {
    let committed = std::fs::read(fixture_path()).unwrap();
    let art = PtqArtifact::from_bytes(committed.clone()).unwrap_ok();
    assert_eq!(
        art.to_bytes(),
        committed,
        "writer output drifted from the committed version-3 artifact"
    );
}

#[test]
fn golden_artifact_matches_calibrate_from_scratch_bit_for_bit() {
    let art = PtqArtifact::load(&fixture_path()).unwrap_ok();
    let zoo = build_zoo(ZooFilter::Quick);
    let out = PtqSession::new(QuantConfig::fp8(Fp8Format::E4M3))
        .quantize(&zoo[0])
        .unwrap_ok();
    assert_eq!(
        art.model.artifact_bytes(),
        out.model.artifact_bytes(),
        "fixture no longer matches a from-scratch quantization"
    );
}

#[test]
fn reader_rejects_the_next_version_with_a_clear_error() {
    let mut bytes = std::fs::read(fixture_path()).unwrap();
    let v = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    bytes[8..12].copy_from_slice(&(v + 1).to_le_bytes());
    let err = ArtifactReader::from_vec(bytes).err().unwrap();
    match err {
        ArtifactError::UnsupportedVersion { found, supported } => {
            assert_eq!(found, v + 1);
            assert_eq!(supported, v);
        }
        other => panic!("expected UnsupportedVersion, got {other}"),
    }
    assert!(
        err.to_string().contains("version"),
        "message should name the problem: {err}"
    );
}

#[test]
fn reader_rejects_the_previous_version_with_a_clear_error() {
    let old = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(OLD_FIXTURE);
    let err = PtqArtifact::load(&old).err().unwrap();
    let msg = err.to_string();
    assert!(
        msg.contains("version") && msg.contains('2'),
        "v2 fixture must fail with a version error naming the found version: {msg}"
    );
}

#[test]
fn mmap_read_path_is_live_on_linux() {
    let reader = ArtifactReader::open(&fixture_path()).unwrap();
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    assert!(
        reader.shared_buf().is_mapped(),
        "fixture should load through the zero-copy mmap path"
    );
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    assert!(!reader.shared_buf().is_mapped());
}

/// Regenerates the fixture and prints the score pin. Ignored: run
/// explicitly (see module docs) only when the format version changes.
#[test]
#[ignore = "writes the committed fixture; run only on an intentional format bump"]
fn regenerate() {
    let zoo = build_zoo(ZooFilter::Quick);
    let path = fixture_path();
    let out = PtqSession::new(QuantConfig::fp8(Fp8Format::E4M3))
        .save_artifact(&zoo[0], &path)
        .unwrap_ok();
    println!(
        "wrote {} ({} bytes); GOLDEN_SCORE_BITS = {:#018X} (score {})",
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        out.score.to_bits(),
        out.score
    );
}
