//! Paper-shape integration tests: the qualitative claims of the paper
//! checked on purpose-built micro-workloads (fast, deterministic).
//!
//! The full quantitative reproduction lives in the bench binaries; these
//! tests pin the *mechanisms* so refactors cannot silently lose them.

use fp8_ptq::core::config::{Approach, DataFormat};
use fp8_ptq::core::observer::clip_quant_mse;
use fp8_ptq::core::{paper_recipe, PtqSession};
use fp8_ptq::fp8::{
    fake_quant_fp8, fake_quant_int8, fp8_scale, Fp8Codec, Fp8Format, Int8Codec, Int8Mode,
};
use fp8_ptq::models::families::common::{Head, NlpConfig};
use fp8_ptq::models::families::nlp::encoder_workload;
use fp8_ptq::nn::UnwrapOk;
use fp8_ptq::tensor::TensorRng;

fn outlier_tensor(mag: f32) -> Vec<f32> {
    let mut rng = TensorRng::seed(0x5eed);
    let mut v = rng.normal(&[20_000], 0.0, 0.5f32.sqrt()).into_vec();
    for i in (0..v.len()).step_by(100) {
        v[i] = mag * (rng.unit() * 2.0 - 1.0);
    }
    v
}

/// Figure 1: INT8's MSE degrades ~quadratically with outlier magnitude;
/// max-scaled FP8's barely moves.
#[test]
fn int8_mse_quadratic_in_outliers_fp8_flat() {
    let mse_of = |mag: f32| {
        let data = outlier_tensor(mag);
        let absmax = data.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let mut d1 = data.clone();
        let int8 = Int8Codec::from_range(-absmax, absmax, Int8Mode::Symmetric);
        let i8_mse = fake_quant_int8(&mut d1, &int8).mse;
        let mut d2 = data.clone();
        let codec = Fp8Codec::new(Fp8Format::E4M3);
        let fp8_mse = fake_quant_fp8(&mut d2, &codec, fp8_scale(Fp8Format::E4M3, absmax)).mse;
        (i8_mse, fp8_mse)
    };
    let (i8_a, fp8_a) = mse_of(6.0);
    let (i8_b, fp8_b) = mse_of(24.0);
    assert!(i8_b / i8_a > 8.0, "INT8 growth {}", i8_b / i8_a);
    assert!(fp8_b / fp8_a < 6.0, "FP8 growth {}", fp8_b / fp8_a);
    assert!(fp8_b < i8_b, "at 24x: fp8 {fp8_b} vs int8 {i8_b}");
}

/// Appendix A.1 / Figure 9: clipping the range helps INT8's bulk
/// precision but not FP8's.
#[test]
fn clipping_asymmetry() {
    let data = outlier_tensor(6.0);
    let bulk: Vec<f32> = data.iter().copied().filter(|x| x.abs() <= 2.0).collect();
    let absmax = 6.0;
    let int8_gain = clip_quant_mse(&bulk, absmax, DataFormat::Int8)
        / clip_quant_mse(&bulk, 2.0, DataFormat::Int8);
    let fp8_gain = clip_quant_mse(&bulk, absmax, DataFormat::Fp8(Fp8Format::E4M3))
        / clip_quant_mse(&bulk, 2.0, DataFormat::Fp8(Fp8Format::E4M3));
    assert!(int8_gain > 4.0, "INT8 bulk gain from clipping: {int8_gain}");
    assert!(fp8_gain < 1.5, "FP8 bulk gain from clipping: {fp8_gain}");
}

/// §4.2/§3.2: on a heavy-tailed (range-bound) encoder, E4M3's wider
/// dynamic-range window loses less accuracy than E3M4's.
#[test]
fn e4m3_window_beats_e3m4_on_heavy_tails() {
    // Aggregated over two seeds so a single lucky/unlucky eval sample
    // cannot decide the comparison.
    let (mut e4_total, mut e3_total, mut e3_max) = (0.0f64, 0.0f64, 0.0f64);
    for seed in [77u64, 79] {
        let cfg = NlpConfig {
            vocab: 48,
            seq: 16,
            d: 64,
            heads: 4,
            layers: 2,
            ffn_mult: 2,
            seed,
            outlier_gain: 3000.0,
            outlier_channels: 2,
            gamma_sigma: 2.6, // heavy tail: spreads past E3M4's ~2e3 window
        };
        let w = encoder_workload("funnel_like", "mrpc_syn", &cfg, Head::Binary);
        let e4 = PtqSession::new(paper_recipe(
            DataFormat::Fp8(Fp8Format::E4M3),
            Approach::Static,
            w.spec.domain,
        ))
        .quantize(&w)
        .unwrap_ok();
        let e3 = PtqSession::new(paper_recipe(
            DataFormat::Fp8(Fp8Format::E3M4),
            Approach::Static,
            w.spec.domain,
        ))
        .quantize(&w)
        .unwrap_ok();
        e4_total += e4.result.loss();
        e3_total += e3.result.loss();
        e3_max = e3_max.max(e3.result.loss());
    }
    assert!(
        e3_max > 0.0,
        "tail never left E3M4's window; the comparison is vacuous"
    );
    assert!(
        e4_total <= e3_total + 1e-9,
        "E4M3 total loss {e4_total} vs E3M4 total loss {e3_total}"
    );
}

/// §4.2.1: SmoothQuant recovers INT8 accuracy on outlier-heavy encoders.
#[test]
fn smoothquant_recovers_int8() {
    let cfg = NlpConfig {
        vocab: 48,
        seq: 16,
        d: 64,
        heads: 4,
        layers: 2,
        ffn_mult: 2,
        seed: 78,
        outlier_gain: 600.0,
        outlier_channels: 1,
        gamma_sigma: 0.6,
    };
    let w = encoder_workload("bert_like", "sst2_syn", &cfg, Head::Classes(6));
    let with_sq = paper_recipe(DataFormat::Int8, Approach::Dynamic, w.spec.domain);
    let mut no_sq = with_sq.clone();
    no_sq.smoothquant_alpha = None;
    let s_with = PtqSession::new(with_sq).quantize(&w).unwrap_ok().score;
    let s_without = PtqSession::new(no_sq).quantize(&w).unwrap_ok().score;
    assert!(
        s_with >= s_without - 1e-9,
        "SQ {} vs no-SQ {}",
        s_with,
        s_without
    );
}

/// Table-1 constants are load-bearing for everything above.
#[test]
fn table1_constants() {
    assert_eq!(Fp8Format::E5M2.max_value(), 57344.0);
    assert_eq!(Fp8Format::E4M3.max_value(), 448.0);
    assert_eq!(Fp8Format::E3M4.max_value(), 30.0);
    assert!(Fp8Format::E5M2.direct_quantization());
}
